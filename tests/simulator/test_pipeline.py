"""Simulated AdOC pipeline: decision ladder, conservation, paper shapes."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import AdocConfig, DEFAULT_CONFIG
from repro.simulator import (
    profile_by_name,
    simulate_adoc_message,
    simulate_posix_message,
)
from repro.transport import GBIT, INTERNET, LAN100, RENATER

MB = 1024 * 1024
ASCII = profile_by_name("ascii")
BINARY = profile_by_name("binary")
INCOMPRESSIBLE = profile_by_name("incompressible")


class TestPosixBaseline:
    def test_large_transfer_tracks_bandwidth(self):
        r = simulate_posix_message(32 * MB, LAN100, seed=0)
        assert r.app_bandwidth_bps == pytest.approx(94e6, rel=0.02)

    def test_small_transfer_latency_dominated(self):
        r = simulate_posix_message(10, INTERNET, seed=0)
        assert r.elapsed_s >= INTERNET.latency_s

    def test_elapsed_monotone_in_size(self):
        times = [
            simulate_posix_message(n, RENATER, seed=3).elapsed_s
            for n in (1000, 100_000, MB)
        ]
        assert times == sorted(times)


class TestDecisionLadder:
    def test_small_message_bypasses_pipeline(self):
        r = simulate_adoc_message(100_000, ASCII, LAN100, seed=0)
        assert not r.pipeline_used
        assert not r.fast_path
        assert r.wire_bytes == 100_000 + 12 + 9

    def test_gbit_probe_takes_fast_path(self):
        r = simulate_adoc_message(4 * MB, ASCII, GBIT, seed=0)
        assert r.fast_path
        assert not r.pipeline_used
        assert r.probe_bps is not None and r.probe_bps > 500e6
        assert r.wire_bytes >= 4 * MB  # raw + framing

    def test_lan_probe_engages_pipeline(self):
        r = simulate_adoc_message(4 * MB, ASCII, LAN100, seed=0)
        assert r.pipeline_used
        assert r.probe_bps is not None and r.probe_bps < 500e6
        assert r.wire_bytes < 4 * MB

    def test_forced_compression_skips_probe(self):
        cfg = DEFAULT_CONFIG.with_levels(1, 10)
        r = simulate_adoc_message(4 * MB, ASCII, GBIT, config=cfg, seed=0)
        assert r.pipeline_used
        assert r.probe_bps is None

    def test_disabled_compression_always_raw(self):
        cfg = DEFAULT_CONFIG.with_levels(0, 0)
        r = simulate_adoc_message(4 * MB, ASCII, RENATER, config=cfg, seed=0)
        assert not r.pipeline_used
        assert r.wire_bytes >= 4 * MB


class TestPaperShapes:
    """The headline claims of Figures 3-7 (DESIGN.md section 4)."""

    def test_lan100_speedups(self):
        base = simulate_posix_message(32 * MB, LAN100, seed=1)
        ascii_r = simulate_adoc_message(32 * MB, ASCII, LAN100, seed=1)
        bin_r = simulate_adoc_message(32 * MB, BINARY, LAN100, seed=1)
        inc_r = simulate_adoc_message(32 * MB, INCOMPRESSIBLE, LAN100, seed=1)
        assert 1.6 < base.elapsed_s / ascii_r.elapsed_s < 3.5
        assert 1.2 < base.elapsed_s / bin_r.elapsed_s < 2.4
        # Incompressible: never significantly worse than POSIX.
        assert base.elapsed_s / inc_r.elapsed_s > 0.95

    def test_renater_speedups(self):
        base = simulate_posix_message(32 * MB, RENATER, seed=1)
        ascii_r = simulate_adoc_message(32 * MB, ASCII, RENATER, seed=1)
        bin_r = simulate_adoc_message(32 * MB, BINARY, RENATER, seed=1)
        assert 4.0 < base.elapsed_s / ascii_r.elapsed_s < 7.0
        assert 1.8 < base.elapsed_s / bin_r.elapsed_s < 3.0

    def test_internet_speedups(self):
        base = simulate_posix_message(32 * MB, INTERNET, seed=1)
        ascii_r = simulate_adoc_message(32 * MB, ASCII, INTERNET, seed=1)
        assert 4.5 < base.elapsed_s / ascii_r.elapsed_s < 7.0

    def test_gbit_overhead_microseconds(self):
        """Fig. 7: the Gbit overhead is fixed tens of microseconds."""
        for size in (MB, 4 * MB, 32 * MB):
            base = simulate_posix_message(size, GBIT, seed=1)
            r = simulate_adoc_message(size, ASCII, GBIT, seed=1)
            overhead = r.elapsed_s - base.elapsed_s
            assert 0 <= overhead < 100e-6

    def test_crossover_at_512kb(self):
        """Below 512 KB AdOC == POSIX; above, compression engages."""
        below = simulate_adoc_message(511 * 1024, ASCII, RENATER, seed=1)
        above = simulate_adoc_message(520 * 1024, ASCII, RENATER, seed=1)
        assert not below.pipeline_used
        assert above.pipeline_used
        assert above.wire_bytes < below.wire_bytes

    def test_adaptation_reaches_high_levels_on_slow_network(self):
        r = simulate_adoc_message(8 * MB, ASCII, INTERNET, seed=1)
        assert max(r.levels_used) >= 8

    def test_incompressible_guard_keeps_level_down(self):
        r = simulate_adoc_message(8 * MB, INCOMPRESSIBLE, RENATER, seed=1)
        assert r.guard_trips > 0
        # Most packets must be raw.
        raw = r.levels_used.get(0, 0)
        assert raw > sum(v for k, v in r.levels_used.items() if k > 0)


class TestConservationAndAccounting:
    @pytest.mark.parametrize("data", [ASCII, BINARY, INCOMPRESSIBLE])
    @pytest.mark.parametrize("size", [600_000, 3 * MB])
    def test_wire_bytes_reasonable(self, data, size):
        r = simulate_adoc_message(size, data, RENATER, seed=2)
        assert r.payload_bytes == size
        # Wire never exceeds raw + framing overhead...
        assert r.wire_bytes <= size * 1.01 + 1024
        # ...and never drops below the best conceivable ratio.
        assert r.wire_bytes >= size / (data.best_ratio * 1.1)

    def test_deterministic_given_seed(self):
        a = simulate_adoc_message(2 * MB, ASCII, RENATER, seed=42)
        b = simulate_adoc_message(2 * MB, ASCII, RENATER, seed=42)
        assert a.elapsed_s == b.elapsed_s
        assert a.wire_bytes == b.wire_bytes
        assert a.levels_used == b.levels_used

    def test_different_seeds_vary_on_jittery_wan(self):
        a = simulate_adoc_message(2 * MB, ASCII, RENATER, seed=1)
        b = simulate_adoc_message(2 * MB, ASCII, RENATER, seed=2)
        assert a.elapsed_s != b.elapsed_s


class TestDivergenceScenario:
    def test_guard_limits_slow_receiver_damage(self):
        slow = dataclasses.replace(LAN100, receiver_cpu_scale=0.02)
        with_guard = simulate_adoc_message(16 * MB, ASCII, slow, seed=1)
        without = simulate_adoc_message(
            16 * MB, ASCII, slow, seed=1, use_divergence=False
        )
        assert with_guard.elapsed_s < without.elapsed_s * 0.7

    def test_guard_settles_on_raw_for_long_transfers(self):
        slow = dataclasses.replace(LAN100, receiver_cpu_scale=0.02)
        r = simulate_adoc_message(32 * MB, ASCII, slow, seed=1)
        raw_packets = r.levels_used.get(0, 0)
        assert raw_packets > 0.7 * sum(r.levels_used.values())


class TestAdapterFactoryHook:
    def test_custom_adapter_used(self):
        calls = []

        class FixedAdapter:
            def __init__(self, level):
                self.level = level

            def next_level(self, queue_size, now):
                calls.append(queue_size)
                return self.level

        r = simulate_adoc_message(
            2 * MB,
            ASCII,
            RENATER,
            seed=1,
            adapter_factory=lambda cfg, div, inc: FixedAdapter(5),
        )
        assert calls, "custom adapter must be consulted"
        assert set(r.levels_used) <= {0, 5}
