"""Discrete-event engine: clock, processes, stores, deadlock detection."""

from __future__ import annotations

import pytest

from repro.simulator import Environment, SimulationError, Store, Timeout


class TestTimeouts:
    def test_clock_advances(self):
        env = Environment()
        log = []

        def proc():
            yield Timeout(1.5)
            log.append(env.now)
            yield Timeout(0.5)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [1.5, 2.0]

    def test_processes_interleave_by_time(self):
        env = Environment()
        log = []

        def a():
            yield Timeout(1.0)
            log.append("a1")
            yield Timeout(2.0)
            log.append("a3")

        def b():
            yield Timeout(2.0)
            log.append("b2")

        env.process(a())
        env.process(b())
        env.run()
        assert log == ["a1", "b2", "a3"]

    def test_zero_timeout_is_legal(self):
        env = Environment()

        def proc():
            yield Timeout(0.0)

        env.process(proc())
        env.run()
        assert env.now == 0.0

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_run_until_stops_early(self):
        env = Environment()

        def proc():
            for _ in range(10):
                yield Timeout(1.0)

        env.process(proc())
        env.run(until=3.5)
        assert env.now == 3.5


class TestStore:
    def test_put_get_fifo(self):
        env = Environment()
        store = Store(env, capacity=10)
        got = []

        def producer():
            for i in range(5):
                yield store.put(i)
            store.close()

        def consumer():
            while True:
                item = yield store.get()
                if item is None:
                    return
                got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_capacity_blocks_producer(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer():
            yield store.put("a")
            yield store.put("b")
            times.append(("b-queued", env.now))
            store.close()

        def consumer():
            yield Timeout(5.0)
            assert (yield store.get()) == "a"
            assert (yield store.get()) == "b"

        env.process(producer())
        env.process(consumer())
        env.run()
        # "b" could only be queued once "a" was taken at t=5.
        assert times[0][1] == 5.0

    def test_weighted_capacity(self):
        env = Environment()
        store = Store(env, capacity=100.0)
        order = []

        def producer():
            yield store.put("big", weight=80)
            order.append(("big-in", env.now))
            yield store.put("big2", weight=80)  # must wait for drain
            order.append(("big2-in", env.now))
            store.close()

        def consumer():
            yield Timeout(2.0)
            while (yield store.get()) is not None:
                pass

        env.process(producer())
        env.process(consumer())
        env.run()
        assert order[0][1] == 0.0
        assert order[1][1] == 2.0

    def test_oversized_item_admitted_when_empty(self):
        env = Environment()
        store = Store(env, capacity=10.0)
        ok = []

        def producer():
            yield store.put("huge", weight=1000)
            ok.append(True)
            store.close()

        def consumer():
            while (yield store.get()) is not None:
                pass

        env.process(producer())
        env.process(consumer())
        env.run()
        assert ok == [True]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env, capacity=10)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, env.now))

        def producer():
            yield Timeout(3.0)
            yield store.put("late")
            store.close()

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [("late", 3.0)]

    def test_close_drains_then_none(self):
        env = Environment()
        store = Store(env, capacity=10)
        got = []

        def producer():
            yield store.put(1)
            store.close()

        def consumer():
            got.append((yield store.get()))
            got.append((yield store.get()))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [1, None]

    def test_peak_and_total_counters(self):
        env = Environment()
        store = Store(env, capacity=10)

        def producer():
            for i in range(4):
                yield store.put(i)
            store.close()

        def consumer():
            yield Timeout(1.0)
            while (yield store.get()) is not None:
                pass

        env.process(producer())
        env.process(consumer())
        env.run()
        assert store.total_put == 4
        assert store.peak_size == 4


class TestErrors:
    def test_deadlock_detected(self):
        env = Environment()
        store = Store(env, capacity=10)

        def starved():
            yield store.get()  # nobody ever puts or closes

        env.process(starved())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run()

    def test_process_exception_surfaces(self):
        env = Environment()

        def bad():
            yield Timeout(1.0)
            raise RuntimeError("model bug")

        env.process(bad())
        with pytest.raises(SimulationError, match="model bug"):
            env.run()

    def test_unknown_effect_rejected(self):
        env = Environment()

        def weird():
            yield "not-an-effect"

        env.process(weird())
        with pytest.raises(SimulationError, match="unknown effect"):
            env.run()


class TestRunawayGuard:
    def test_event_budget_enforced(self):
        env = Environment()

        def spinner():
            while True:
                yield Timeout(0.0)

        env.process(spinner())
        with pytest.raises(SimulationError, match="budget"):
            env.run(max_events=1000)
