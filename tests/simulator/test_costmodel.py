"""Cost model: Table-1 shape invariants and calibration grounding."""

from __future__ import annotations

import zlib

import pytest

from repro.compress import lzf_compress
from repro.data import (
    dense_matrix,
    encode_matrix_ascii,
    sparse_matrix,
)
from repro.simulator import PROFILES, profile_by_name


def test_all_profiles_present():
    for name in (
        "table1-ascii",
        "table1-binary",
        "ascii",
        "binary",
        "incompressible",
        "sparse",
        "dense",
    ):
        assert name in PROFILES


def test_unknown_profile_rejected():
    with pytest.raises(ValueError):
        profile_by_name("nope")


def test_level_zero_is_free():
    for p in PROFILES.values():
        c = p.cost(0)
        assert c.compress_bps == float("inf")
        assert c.ratio == 1.0


@pytest.mark.parametrize("name", ["table1-ascii", "table1-binary", "ascii", "binary"])
def test_compression_speed_decreases_with_level(name):
    """Table 1: c.time grows with the level (so speed shrinks)."""
    p = profile_by_name(name)
    speeds = [p.cost(lvl).compress_bps for lvl in range(1, 11)]
    for lo, hi in zip(speeds, speeds[1:]):
        assert hi <= lo


@pytest.mark.parametrize("name", ["table1-ascii", "table1-binary", "ascii", "binary", "sparse", "dense"])
def test_ratio_nondecreasing_with_level(name):
    """Table 1: the ratio saturates but never falls with the level."""
    p = profile_by_name(name)
    ratios = [p.cost(lvl).ratio for lvl in range(1, 11)]
    for lo, hi in zip(ratios, ratios[1:]):
        assert hi >= lo


@pytest.mark.parametrize("name", ["table1-ascii", "table1-binary"])
def test_decompression_roughly_constant(name):
    """Table 1: d.time varies little across levels (< 2x spread)."""
    p = profile_by_name(name)
    speeds = [p.cost(lvl).decompress_bps for lvl in range(1, 11)]
    assert max(speeds) / min(speeds) < 2.0


def test_lzf_fastest_lowest_ratio():
    for name in ("table1-ascii", "table1-binary", "ascii", "binary"):
        p = profile_by_name(name)
        assert p.cost(1).compress_bps == max(
            p.cost(lvl).compress_bps for lvl in range(1, 11)
        )
        assert p.cost(1).ratio == min(p.cost(lvl).ratio for lvl in range(1, 11))


def test_ascii_compresses_better_and_faster_than_binary():
    """Paper section 2: 'ASCII data compresses better and requires less
    time to compress than binary data'.  Table 1 itself has one
    inversion (gzip 8: 26.7 s vs 24.1 s), so speed is compared at
    levels 1-8 and ratio everywhere."""
    a = profile_by_name("ascii")
    b = profile_by_name("binary")
    for lvl in range(1, 11):
        assert a.cost(lvl).ratio > b.cost(lvl).ratio
    for lvl in range(1, 9):
        assert a.cost(lvl).compress_bps >= b.cost(lvl).compress_bps


def test_incompressible_never_compresses():
    p = profile_by_name("incompressible")
    for lvl in range(1, 11):
        assert p.cost(lvl).ratio <= 1.0


def test_figure_class_ratio_targets():
    """Section 6.1.1: ~5 at gzip 6 for ASCII, ~2 for binary.
    AdOC level 7 == gzip 6."""
    assert profile_by_name("ascii").cost(7).ratio == pytest.approx(5.0, rel=0.1)
    assert profile_by_name("binary").cost(7).ratio == pytest.approx(2.0, rel=0.1)


def test_matrix_profiles_grounded_in_real_encoder():
    """The dense/sparse cost-model ratios must match what the actual
    marshalled matrices measure (within 25%), at lzf and gzip 6."""
    dense = encode_matrix_ascii(dense_matrix(120, seed=5))
    sparse = encode_matrix_ascii(sparse_matrix(120))
    measured = {
        ("dense", 1): len(dense) / len(lzf_compress(dense)),
        ("dense", 7): len(dense) / len(zlib.compress(dense, 6)),
        ("sparse", 1): len(sparse) / len(lzf_compress(sparse)),
    }
    for (name, lvl), got in measured.items():
        model = profile_by_name(name).cost(lvl).ratio
        assert model == pytest.approx(got, rel=0.25), (name, lvl, got, model)
