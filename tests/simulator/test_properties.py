"""Property-based tests of the simulated pipeline.

Conservation and sanity over randomized configurations: whatever the
buffer/packet sizing, data texture, and network, the simulation must
deliver every byte, keep wire bytes within the physically possible
band, and never beat the speed-of-light bounds.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdocConfig
from repro.core.divergence import DivergenceGuard
from repro.simulator import (
    profile_by_name,
    simulate_adoc_message,
    simulate_posix_message,
)
from repro.transport import LAN100, RENATER

KB = 1024


@settings(max_examples=40, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=4 * 1024 * KB),
    data_name=st.sampled_from(["ascii", "binary", "incompressible", "sparse", "dense"]),
    buffer_kb=st.integers(min_value=32, max_value=512),
    packet_kb=st.sampled_from([2, 4, 8, 16]),
    seed=st.integers(min_value=0, max_value=999),
)
def test_conservation_over_random_configs(size, data_name, buffer_kb, packet_kb, seed):
    cfg = AdocConfig(
        buffer_size=buffer_kb * KB,
        packet_size=packet_kb * KB,
        slice_size=packet_kb * KB,
    )
    data = profile_by_name(data_name)
    r = simulate_adoc_message(size, data, RENATER, cfg, seed=seed)
    # Every byte delivered (the model asserts internally; re-check here).
    assert r.payload_bytes == size
    # Wire bytes within the physical band.
    assert r.wire_bytes >= size / (data.best_ratio * 1.2)
    assert r.wire_bytes <= size * 1.02 + 2048
    # Can't finish faster than the wire allows at the best ratio.
    floor = r.wire_bytes / (RENATER.bandwidth_bps / 8.0) * 0.5  # jitter slack
    assert r.elapsed_s > 0
    assert r.elapsed_s >= min(floor, r.elapsed_s)  # non-vacuous only for big sizes
    if size > 512 * KB:
        assert r.elapsed_s >= size / (data.best_ratio * 1.2) / (
            RENATER.bandwidth_bps / 8.0
        )


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(min_value=0, max_value=2 * 1024 * KB),
    seed=st.integers(min_value=0, max_value=999),
)
def test_posix_elapsed_at_least_serialization(size, seed):
    r = simulate_posix_message(size, LAN100, seed=seed)
    assert r.elapsed_s >= LAN100.latency_s
    assert r.elapsed_s >= size / (LAN100.bandwidth_bps / 8.0) * 0.999


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=99))
def test_adoc_never_much_worse_than_posix_on_healthy_networks(seed):
    """The paper's headline safety claim, as a property over seeds."""
    size = 3 * 1024 * KB
    data = profile_by_name("incompressible")
    posix = simulate_posix_message(size, RENATER, seed=seed)
    adoc = simulate_adoc_message(size, data, RENATER, seed=seed)
    # Within 10% + fixed overheads even for the worst data class.
    assert adoc.elapsed_s <= posix.elapsed_s * 1.25 + 0.1


def test_divergence_records_persist_across_messages():
    """The guard's per-level bandwidth records are per-connection state
    and survive message boundaries (as in the C library).

    Note what is *not* guaranteed: that a second message is strictly
    faster.  Records formed while the receive chain still had buffer
    slack can flatter mid levels, so exploration noise remains — the
    paper's heuristic converges (long transfers end up raw, see
    TestDivergenceScenario) but does not learn monotonically.
    """
    slow = dataclasses.replace(LAN100, receiver_cpu_scale=0.02)
    data = profile_by_name("ascii")
    size = 8 * 1024 * KB

    guard = DivergenceGuard(1.0)
    first = simulate_adoc_message(size, data, slow, seed=3, divergence=guard)
    # Records persist: raw (level 0) was measured, and the top level
    # carries the receiver-bound rate, far below level 0's.
    bw0 = guard.recorded_bandwidth(0)
    bw10 = guard.recorded_bandwidth(10)
    assert bw0 is not None and bw10 is not None
    assert bw0 > bw10 * 3
    # A later proposal of the top level is vetoed outright from the
    # accumulated evidence — no re-exploration of level 10 needed.
    assert guard.filter_level(10, now=1e9) < 10
