"""Sweep/aggregation helpers and the Table-2 latency model."""

from __future__ import annotations

import pytest

from repro.simulator import pingpong_latency, sweep, transfer_bandwidth
from repro.transport import GBIT, INTERNET, LAN100, RENATER

MB = 1024 * 1024


class TestTransferBandwidth:
    def test_posix_method(self):
        r = transfer_bandwidth(MB, "posix", LAN100)
        assert r.payload_bytes == MB

    def test_adoc_methods(self):
        for m in ("ascii", "binary", "incompressible", "sparse", "dense"):
            r = transfer_bandwidth(600_000, m, RENATER)
            assert r.payload_bytes == 600_000

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            transfer_bandwidth(MB, "quantum", LAN100)


class TestSweep:
    def test_grid_shape(self):
        pts = sweep([1000, MB], ["posix", "ascii"], RENATER, repeats=2)
        assert len(pts) == 4
        assert {(p.size, p.method) for p in pts} == {
            (1000, "posix"),
            (1000, "ascii"),
            (MB, "posix"),
            (MB, "ascii"),
        }

    def test_best_leq_mean(self):
        best = sweep([MB], ["posix"], RENATER, repeats=6, agg="best")[0]
        mean = sweep([MB], ["posix"], RENATER, repeats=6, agg="mean")[0]
        assert best.elapsed_s <= mean.elapsed_s
        assert best.bandwidth_bps >= mean.bandwidth_bps

    def test_mean_smooths_less_than_best(self):
        """Fig. 4 vs Fig. 5: averages oscillate, best-of is smooth —
        i.e. the per-size variance of the mean curve is nonzero on a
        jittery WAN while best-of-N changes monotonically less."""
        sizes = [MB, 2 * MB, 4 * MB]
        best = sweep(sizes, ["posix"], RENATER, repeats=6, agg="best")
        for p in best:
            assert p.bandwidth_bps > 0

    def test_invalid_agg_rejected(self):
        with pytest.raises(ValueError):
            sweep([MB], ["posix"], RENATER, agg="median")


class TestTable2:
    """The latency model must reproduce Table 2's milliseconds."""

    @pytest.mark.parametrize(
        "profile,posix_ms,forced_ms",
        [
            (INTERNET, 80.0, 225.0),
            (RENATER, 9.2, 25.0),
            (LAN100, 0.18, 1.8),
            (GBIT, 0.030, 1.6),
        ],
    )
    def test_paper_rows(self, profile, posix_ms, forced_ms):
        assert pingpong_latency(profile, "posix") * 1e3 == pytest.approx(
            posix_ms, rel=0.05
        )
        assert pingpong_latency(profile, "forced") * 1e3 == pytest.approx(
            forced_ms, rel=0.25
        )

    @pytest.mark.parametrize("profile", [INTERNET, RENATER, LAN100])
    def test_adoc_latency_close_to_posix_below_gbit(self, profile):
        """Paper: 'no difference between AdOC and POSIX read/write up to
        100 Mb LAN'."""
        posix = pingpong_latency(profile, "posix")
        adoc = pingpong_latency(profile, "adoc")
        assert adoc - posix < 50e-6

    def test_gbit_adoc_overhead_tens_of_us(self):
        posix = pingpong_latency(GBIT, "posix")
        adoc = pingpong_latency(GBIT, "adoc")
        assert 10e-6 <= adoc - posix <= 50e-6

    def test_forced_much_slower_than_adoc(self):
        for p in (INTERNET, RENATER, LAN100, GBIT):
            assert pingpong_latency(p, "forced") > 5 * pingpong_latency(p, "adoc") or (
                pingpong_latency(p, "forced") - pingpong_latency(p, "adoc") > 1e-3
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            pingpong_latency(LAN100, "weird")
