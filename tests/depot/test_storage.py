"""Depot storage engine: allocation, capabilities, ranges, accounting."""

from __future__ import annotations

import threading

import pytest

from repro.depot import ByteArrayDepot, DepotError


@pytest.fixture
def depot():
    return ByteArrayDepot(total_capacity=1024 * 1024)


class TestAllocation:
    def test_allocate_returns_distinct_caps(self, depot):
        a = depot.allocate(1000)
        assert a.read_cap != a.write_cap
        assert a.read_cap.startswith("R-")
        assert a.write_cap.startswith("W-")
        assert depot.allocation_count == 1
        assert depot.used_bytes == 1000

    def test_capacity_enforced(self, depot):
        depot.allocate(1024 * 1024)
        with pytest.raises(DepotError, match="full"):
            depot.allocate(1)

    def test_free_releases_capacity(self, depot):
        a = depot.allocate(500_000)
        depot.free(a.write_cap)
        assert depot.used_bytes == 0
        depot.allocate(1024 * 1024)  # fits again

    def test_free_requires_write_cap(self, depot):
        a = depot.allocate(100)
        with pytest.raises(DepotError):
            depot.free(a.read_cap)

    def test_zero_allocation_rejected(self, depot):
        with pytest.raises(DepotError):
            depot.allocate(0)

    def test_invalid_total_capacity(self):
        with pytest.raises(ValueError):
            ByteArrayDepot(0)


class TestDataPath:
    def test_store_load_roundtrip(self, depot):
        a = depot.allocate(100)
        depot.store(a.write_cap, b"hello depot")
        assert depot.load(a.read_cap) == b"hello depot"

    def test_offset_writes_and_reads(self, depot):
        a = depot.allocate(100)
        depot.store(a.write_cap, b"AAAA", offset=0)
        depot.store(a.write_cap, b"BBBB", offset=4)
        assert depot.load(a.read_cap, offset=2, length=4) == b"AABB"

    def test_store_requires_write_cap(self, depot):
        a = depot.allocate(100)
        with pytest.raises(DepotError):
            depot.store(a.read_cap, b"nope")

    def test_load_requires_read_cap(self, depot):
        a = depot.allocate(100)
        depot.store(a.write_cap, b"data")
        with pytest.raises(DepotError):
            depot.load(a.write_cap)

    def test_write_beyond_capacity_rejected(self, depot):
        a = depot.allocate(10)
        with pytest.raises(DepotError):
            depot.store(a.write_cap, b"x" * 11)
        with pytest.raises(DepotError):
            depot.store(a.write_cap, b"xx", offset=9)

    def test_read_beyond_stored_rejected(self, depot):
        a = depot.allocate(100)
        depot.store(a.write_cap, b"12345")
        with pytest.raises(DepotError):
            depot.load(a.read_cap, offset=0, length=6)

    def test_probe(self, depot):
        a = depot.allocate(64)
        depot.store(a.write_cap, b"abc")
        assert depot.probe(a.read_cap) == (3, 64)
        assert depot.probe(a.write_cap) == (3, 64)
        with pytest.raises(DepotError):
            depot.probe("bogus")


class TestConcurrency:
    def test_parallel_store_load_distinct_allocations(self, depot):
        n_threads = 8
        blobs = {i: bytes([i]) * 5000 for i in range(n_threads)}
        errors: list[BaseException] = []

        def worker(i: int) -> None:
            try:
                a = depot.allocate(5000)
                depot.store(a.write_cap, blobs[i])
                assert depot.load(a.read_cap) == blobs[i]
                depot.free(a.write_cap)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        assert depot.used_bytes == 0
