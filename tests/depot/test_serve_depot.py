"""serve_depot: the depot registry on the reactor RPC server, over TCP."""

from __future__ import annotations

import socket
import struct

import pytest

from repro.core import AdocConfig
from repro.data import ascii_data
from repro.depot.service import serve_depot
from repro.depot.storage import ByteArrayDepot
from repro.middleware.communicator import AdocCommunicator, PlainCommunicator
from repro.middleware.protocol import (
    MsgType,
    RpcMessage,
    read_message,
    write_message,
)
from repro.transport import SocketEndpoint

_U64 = struct.Struct(">Q")

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    io_timeout_s=None,
)


@pytest.fixture(params=["plain", "adoc"])
def depot_conn(request, no_thread_leaks):
    depot = ByteArrayDepot(total_capacity=16 * 1024 * 1024)
    server, address = serve_depot(
        depot, mode=request.param, config=CFG, workers=2
    )
    sock = socket.create_connection(address, timeout=10.0)
    endpoint = SocketEndpoint(sock)
    comm = (
        AdocCommunicator(endpoint, CFG)
        if request.param == "adoc"
        else PlainCommunicator(endpoint)
    )
    yield comm, depot
    comm.close()
    server.close()


def call(comm, name, args):
    write_message(comm, RpcMessage(MsgType.REQUEST, name, args))
    reply = read_message(comm)
    assert reply is not None
    assert reply.type == MsgType.RESPONSE, reply.args
    return reply.args


def test_allocate_store_load_roundtrip(depot_conn):
    comm, depot = depot_conn
    handle, read_cap, write_cap = (
        a.decode() for a in call(comm, "ibp.allocate", [_U64.pack(1 << 20)])
    )
    payload = ascii_data(256 * 1024, seed=9)
    (stored,) = call(
        comm, "ibp.store", [write_cap.encode(), _U64.pack(0), payload]
    )
    assert _U64.unpack(stored)[0] == len(payload)
    (loaded,) = call(
        comm, "ibp.load", [read_cap.encode(), _U64.pack(0), b""]
    )
    assert loaded == payload
    stored_len, capacity = call(comm, "ibp.probe", [read_cap.encode()])
    assert _U64.unpack(stored_len)[0] == len(payload)
    assert _U64.unpack(capacity)[0] == 1 << 20
    assert depot._used >= len(payload)


def test_free_releases_the_allocation(depot_conn):
    comm, depot = depot_conn
    _, _, write_cap = (
        a.decode() for a in call(comm, "ibp.allocate", [_U64.pack(4096)])
    )
    call(comm, "ibp.store", [write_cap.encode(), _U64.pack(0), b"abc"])
    (ok,) = call(comm, "ibp.free", [write_cap.encode()])
    assert ok == b"ok"
