"""Depot over the wire — the paper's IBP integration, end to end.

The decisive test is the last one: multiple client threads driving AdOC
connections into one depot concurrently ("IBP uses multiple threads to
store or retrieve data from data handlers.  It works without error.").
"""

from __future__ import annotations

import threading

import pytest

from repro.core import AdocConfig
from repro.data import ascii_data, incompressible_data
from repro.depot import ByteArrayDepot, DepotClient, depot_registry
from repro.middleware import AdocCommunicator, Agent, PlainCommunicator, RpcError, Server
from repro.transport import pipe_pair

SMALL_CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
)


def adoc_comm(endpoint):
    return AdocCommunicator(endpoint, SMALL_CFG)


@pytest.fixture(params=["plain", "adoc"])
def stack(request):
    comm = PlainCommunicator if request.param == "plain" else adoc_comm
    depot = ByteArrayDepot(total_capacity=32 * 1024 * 1024)
    agent = Agent()
    server = Server("depot-1", registry=depot_registry(depot), communicator_factory=comm)
    agent.register(server, pipe_pair)
    return DepotClient(agent, communicator_factory=comm), depot


class TestRemoteOps:
    def test_allocate_store_load(self, stack):
        client, _ = stack
        _, read_cap, write_cap = client.allocate(100_000)
        blob = ascii_data(60_000, seed=1)
        assert client.store(write_cap, blob) == len(blob)
        assert client.load(read_cap) == blob

    def test_store_stream(self, stack):
        import io

        client, _ = stack
        _, read_cap, write_cap = client.allocate(100_000)
        blob = ascii_data(60_000, seed=9)
        assert client.store_stream(write_cap, io.BytesIO(blob)) == len(blob)
        assert client.load(read_cap) == blob

    def test_partial_range_load(self, stack):
        client, _ = stack
        _, read_cap, write_cap = client.allocate(1000)
        client.store(write_cap, bytes(range(256)) * 3)
        assert client.load(read_cap, offset=256, length=256) == bytes(range(256))

    def test_probe_and_free(self, stack):
        client, depot = stack
        _, read_cap, write_cap = client.allocate(512)
        client.store(write_cap, b"xyz")
        assert client.probe(read_cap) == (3, 512)
        client.free(write_cap)
        assert depot.allocation_count == 0

    def test_remote_errors_propagate(self, stack):
        client, _ = stack
        _, read_cap, write_cap = client.allocate(10)
        with pytest.raises(RpcError, match="capacity"):
            client.store(write_cap, b"x" * 11)
        with pytest.raises(RpcError, match="capability"):
            client.load("R-bogus")


class TestAdocCompressionOnStorePath:
    def test_compressible_store_shrinks_on_wire(self):
        depot = ByteArrayDepot()
        agent = Agent()
        server = Server("d", registry=depot_registry(depot), communicator_factory=adoc_comm)
        agent.register(server, pipe_pair)
        client = DepotClient(agent, communicator_factory=adoc_comm)
        _, read_cap, write_cap = client.allocate(400_000)
        blob = ascii_data(300_000, seed=2)
        res = client.store_timed(write_cap, blob)
        # Over an unshaped (very fast) pipe the controller rightly
        # favours low levels; engaging compression at all is the check.
        assert res.compression_ratio > 1.15
        assert client.load(read_cap) == blob

    def test_incompressible_store_not_inflated(self):
        depot = ByteArrayDepot()
        agent = Agent()
        server = Server("d", registry=depot_registry(depot), communicator_factory=adoc_comm)
        agent.register(server, pipe_pair)
        client = DepotClient(agent, communicator_factory=adoc_comm)
        _, read_cap, write_cap = client.allocate(300_000)
        blob = incompressible_data(200_000, seed=3)
        res = client.store_timed(write_cap, blob)
        assert res.request_wire_bytes <= len(blob) * 1.02 + 2048
        assert client.load(read_cap) == blob


def test_ibp_style_concurrent_movers():
    """Many threads, one depot, AdOC communicators everywhere."""
    depot = ByteArrayDepot(total_capacity=64 * 1024 * 1024)
    agent = Agent()
    server = Server("d", registry=depot_registry(depot), communicator_factory=adoc_comm)
    agent.register(server, pipe_pair)
    errors: list[BaseException] = []

    def mover(i: int) -> None:
        try:
            client = DepotClient(agent, communicator_factory=adoc_comm)
            blob = ascii_data(40_000 + i * 1000, seed=i)
            _, read_cap, write_cap = client.allocate(len(blob))
            client.store(write_cap, blob)
            assert client.load(read_cap) == blob, f"mover {i} corrupted"
            client.free(write_cap)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=mover, args=(i,), daemon=True) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "mover hung"
    assert not errors, errors
    assert depot.allocation_count == 0
