"""Buffer compression: record structure, guard aborts, never-inflate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import codec_for_level
from repro.core import AdocConfig, IncompressibleGuard
from repro.core.compressor import compress_buffer
from repro.data import ascii_data, incompressible_data


def decode_records(records) -> bytes:
    out = bytearray()
    for rec in records:
        codec = codec_for_level(rec.level)
        out += codec.decompress(rec.payload, rec.original_size)
    return bytes(out)


def test_empty_buffer_yields_no_records():
    records, tripped = compress_buffer(b"", 5)
    assert records == [] and not tripped


def test_level_zero_single_raw_record():
    data = b"x" * 1000
    records, tripped = compress_buffer(data, 0)
    assert len(records) == 1
    assert records[0].level == 0
    assert records[0].payload == data
    assert not tripped


@pytest.mark.parametrize("level", [1, 2, 5, 10])
def test_roundtrip_compressible(level):
    data = ascii_data(200 * 1024, seed=1)
    records, tripped = compress_buffer(data, level)
    assert decode_records(records) == data
    assert not tripped
    assert sum(r.original_size for r in records) == len(data)
    # Compressible data must actually shrink.
    assert sum(len(r.payload) for r in records) < len(data)


@pytest.mark.parametrize("level", [1, 2, 6])
def test_incompressible_trips_guard_and_goes_raw(level):
    data = incompressible_data(200 * 1024, seed=2)
    guard = IncompressibleGuard(0.95, 10)
    records, tripped = compress_buffer(data, level, guard)
    assert tripped
    assert guard.active
    assert decode_records(records) == data
    # The tail after the trip must be a raw record.
    assert records[-1].level == 0


def test_never_inflates_beyond_framing():
    data = incompressible_data(200 * 1024, seed=3)
    for level in (1, 2, 6, 10):
        records, _ = compress_buffer(data, level, IncompressibleGuard())
        wire = sum(len(r.payload) for r in records)
        # Payload on the wire never exceeds the original: poor packets
        # are shipped raw.
        assert wire <= len(data)


def test_zlib_without_guard_compresses_whole_buffer():
    data = ascii_data(200 * 1024, seed=4)
    records, _ = compress_buffer(data, 6, guard=None)
    assert len(records) == 1
    assert records[0].level == 6
    assert records[0].original_size == len(data)


def test_lzf_slice_records():
    cfg = AdocConfig()
    data = ascii_data(64 * 1024, seed=5)
    records, _ = compress_buffer(data, 1, None, cfg)
    # One record per slice.
    assert len(records) == 64 * 1024 // cfg.slice_size
    assert all(r.level in (0, 1) for r in records)
    assert decode_records(records) == data


@settings(max_examples=50, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=30_000),
    level=st.integers(min_value=0, max_value=10),
)
def test_roundtrip_property(data, level):
    guard = IncompressibleGuard()
    records, _ = compress_buffer(data, level, guard)
    assert decode_records(records) == data
    assert sum(r.original_size for r in records) == len(data)
