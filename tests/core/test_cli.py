"""CLI: info, trace, bench dispatch, and a live serve/send round trip."""

from __future__ import annotations

import socket
import threading
import time
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.data import ascii_data


class TestInfo:
    def test_lists_levels_and_profiles(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "lzf" in out and "gzip 9" in out
        for name in ("lan100", "gbit", "renater", "internet"):
            assert name in out


class TestTrace:
    def test_trace_renater(self, capsys):
        assert main(["trace", "--network", "renater", "--size-mb", "2"]) == 0
        out = capsys.readouterr().out
        assert "queue" in out
        assert "ratio" in out

    def test_trace_small_message_note(self, capsys):
        # Gbit + small-ish: fast path, no adaptation history printed.
        assert main(["trace", "--network", "gbit", "--size-mb", "1"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out


class TestBench:
    def test_table2(self, capsys):
        assert main(["bench", "table2"]) == 0
        out = capsys.readouterr().out
        assert "renater" in out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig12"])


class TestSendServe:
    def test_roundtrip_over_tcp(self, tmp_path: Path, capsys):
        src = tmp_path / "data.txt"
        src.write_bytes(ascii_data(150_000, seed=1))
        out_dir = tmp_path / "out"

        port_holder = {}

        def serve() -> None:
            # Bind port 0 and let the OS pick; parse it from stdout is
            # awkward under capsys, so pre-pick a free port instead.
            main(
                [
                    "serve",
                    "--port",
                    str(port_holder["port"]),
                    "--out-dir",
                    str(out_dir),
                    "--count",
                    "1",
                ]
            )

        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        port_holder["port"] = s.getsockname()[1]
        s.close()

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        deadline = time.monotonic() + 5
        rc = None
        while time.monotonic() < deadline:
            try:
                rc = main(
                    ["send", "--port", str(port_holder["port"]), str(src)]
                )
                break
            except ConnectionRefusedError:
                time.sleep(0.05)
        server.join(timeout=30)
        assert rc == 0
        assert (out_dir / "data.txt").read_bytes() == src.read_bytes()

    def test_send_missing_file_reports_error(self, tmp_path, capsys):
        port_holder = {}
        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        port_holder["port"] = s.getsockname()[1]
        s.listen(1)

        def sink() -> None:
            try:
                conn, _ = s.accept()
                while conn.recv(65536):
                    pass
                conn.close()
            except OSError:
                pass  # listener torn down at test end

        t = threading.Thread(target=sink, daemon=True)
        t.start()
        rc = main(
            ["send", "--port", str(port_holder["port"]), str(tmp_path / "nope.bin")]
        )
        assert rc == 1
        s.close()


class TestBenchAll:
    def test_writes_all_csvs(self, tmp_path, capsys, monkeypatch):
        # Shrink the figure sweeps so "all" completes quickly; table1
        # runs at full size (a couple of seconds of real codecs).
        import repro.bench.experiments as exp

        monkeypatch.setattr(exp, "FIGURE_SIZES", [1024, 1024 * 1024])
        monkeypatch.setattr(
            exp, "_FIGURE_SETUPS",
            {k: (v[0], 1, v[2]) for k, v in exp._FIGURE_SETUPS.items()},
        )
        rc = main(["bench", "all", "--csv-dir", str(tmp_path)])
        assert rc == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {
            "table1.csv", "table2.csv",
            "fig3.csv", "fig4.csv", "fig5.csv", "fig6.csv", "fig7.csv",
            "fig8.csv", "fig9.csv",
        }
        assert (tmp_path / "fig5.csv").read_text().startswith("size_bytes,")


class TestTraceMerge:
    def make_chrome_trace(self, path: Path, name: str, epoch: float) -> None:
        import json

        trace = {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                 "args": {"name": name}},
                {"name": f"{name}-work", "cat": "span", "ph": "X", "pid": 1,
                 "tid": 1, "ts": 0.0, "dur": 100.0},
            ],
            "otherData": {"epoch_base": epoch},
        }
        path.write_text(json.dumps(trace))

    def test_merge_interleaves_processes(self, tmp_path: Path, capsys):
        import json

        a, b, c = (tmp_path / f"p{i}.json" for i in range(3))
        self.make_chrome_trace(a, "alpha", 10.0)
        self.make_chrome_trace(b, "beta", 10.0005)
        self.make_chrome_trace(c, "gamma", 10.001)
        out = tmp_path / "merged.json"
        assert main(
            ["trace", "merge", str(a), str(b), str(c), "--out", str(out)]
        ) == 0
        assert "merged 3 traces" in capsys.readouterr().out
        merged = json.loads(out.read_text())
        events = merged["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids == {1, 2, 3}
        # process_name metadata replaced by the file stems.
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e.get("name") == "process_name"
        }
        assert names == {1: "p0", 2: "p1", 3: "p2"}
        # Wall-clock alignment: later epochs shift right (us).
        spans = sorted(
            (e["pid"], e["ts"]) for e in events if e["ph"] == "X"
        )
        assert spans == [(1, 0.0), (2, 500.0), (3, 1000.0)]

    def test_merge_accepts_tracer_jsonl(self, tmp_path: Path, capsys):
        import json

        from repro.obs.tracer import EventTracer

        tracer = EventTracer(capacity=8, clock=lambda: 1.0)
        tracer.record("buffer", "done", ts=1.0)
        jsonl = tmp_path / "proc.jsonl"
        jsonl.write_text(tracer.to_jsonl())
        out = tmp_path / "merged.json"
        assert main(["trace", "merge", str(jsonl), "--out", str(out)]) == 0
        merged = json.loads(out.read_text())
        assert any(
            e.get("name") == "done" for e in merged["traceEvents"]
        )

    def test_plain_trace_still_works_after_subparser(self, capsys):
        assert main(["trace", "--network", "gbit", "--size-mb", "1"]) == 0
        assert "ratio" in capsys.readouterr().out


class TestTopFlags:
    def test_top_once_prints_single_snapshot(self, capsys):
        assert main(
            ["top", "--once", "--interval", "0.2", "--size-mb", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("== adoc top (refresh") == 1

    def test_top_json_emits_machine_readable_snapshots(self, capsys):
        import json

        assert main(
            ["top", "--once", "--json", "--interval", "0.2", "--size-mb", "1"]
        ) == 0
        line = capsys.readouterr().out.strip().splitlines()[0]
        snap = json.loads(line)
        assert snap["refresh"] == 1
        assert "metrics" in snap and "digest" in snap
        assert "repro_trace_dropped_total" in snap["metrics"]

    def test_non_tty_output_has_no_ansi_escapes(self, capsys):
        assert main(["top", "--once", "--interval", "0.2", "--size-mb", "1"]) == 0
        assert "\x1b[" not in capsys.readouterr().out


class TestFleetCli:
    def test_top_and_stats_fleet_render_live_instances(self, capsys):
        import json

        from repro.obs.fleet import push_once, serve_fleet
        from repro.obs.metrics import MetricsRegistry

        agg, addr = serve_fleet(ttl_s=30.0)
        try:
            for name in ("cli-a", "cli-b", "cli-c"):
                reg = MetricsRegistry()
                reg.counter(
                    "adoc_wire_bytes_total", "", ("direction",)
                ).inc(512, direction="tx")
                push_once(addr, reg, job="clitest", instance=name)
            target = f"{addr[0]}:{addr[1]}"
            assert main(["top", "--fleet", target, "--once"]) == 0
            out = capsys.readouterr().out
            for name in ("cli-a", "cli-b", "cli-c"):
                assert name in out
            assert "TOTAL (3)" in out

            assert main(["top", "--fleet", target, "--once", "--json"]) == 0
            view = json.loads(capsys.readouterr().out)
            assert len(view["instances"]) == 3

            assert main(["stats", "--fleet", target]) == 0
            prom = capsys.readouterr().out
            assert 'instance="cli-a"' in prom
        finally:
            agg.close()

    def test_fleet_command_serves_for_duration(self, capsys):
        import re

        from repro.obs.fleet import fetch_fleet

        result = {}

        def run() -> None:
            result["rc"] = main(
                ["fleet", "--port", "0", "--duration", "1.5", "--ttl", "5"]
            )

        t = threading.Thread(target=run, name="fleet-cli")
        t.start()
        deadline = time.monotonic() + 5.0
        out = ""
        while "aggregator on" not in out:
            assert time.monotonic() < deadline
            time.sleep(0.05)
            out += capsys.readouterr().out
        match = re.search(r"aggregator on ([\d.]+):(\d+)", out)
        assert match, out
        address = (match.group(1), int(match.group(2)))
        assert fetch_fleet(address)["instances"] == []
        t.join(10.0)
        assert not t.is_alive()
        assert result["rc"] == 0

    def test_bad_hostport_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["top", "--fleet", "nonsense"])
