"""CLI: info, trace, bench dispatch, and a live serve/send round trip."""

from __future__ import annotations

import socket
import threading
import time
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.data import ascii_data


class TestInfo:
    def test_lists_levels_and_profiles(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "lzf" in out and "gzip 9" in out
        for name in ("lan100", "gbit", "renater", "internet"):
            assert name in out


class TestTrace:
    def test_trace_renater(self, capsys):
        assert main(["trace", "--network", "renater", "--size-mb", "2"]) == 0
        out = capsys.readouterr().out
        assert "queue" in out
        assert "ratio" in out

    def test_trace_small_message_note(self, capsys):
        # Gbit + small-ish: fast path, no adaptation history printed.
        assert main(["trace", "--network", "gbit", "--size-mb", "1"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out


class TestBench:
    def test_table2(self, capsys):
        assert main(["bench", "table2"]) == 0
        out = capsys.readouterr().out
        assert "renater" in out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig12"])


class TestSendServe:
    def test_roundtrip_over_tcp(self, tmp_path: Path, capsys):
        src = tmp_path / "data.txt"
        src.write_bytes(ascii_data(150_000, seed=1))
        out_dir = tmp_path / "out"

        port_holder = {}

        def serve() -> None:
            # Bind port 0 and let the OS pick; parse it from stdout is
            # awkward under capsys, so pre-pick a free port instead.
            main(
                [
                    "serve",
                    "--port",
                    str(port_holder["port"]),
                    "--out-dir",
                    str(out_dir),
                    "--count",
                    "1",
                ]
            )

        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        port_holder["port"] = s.getsockname()[1]
        s.close()

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        deadline = time.monotonic() + 5
        rc = None
        while time.monotonic() < deadline:
            try:
                rc = main(
                    ["send", "--port", str(port_holder["port"]), str(src)]
                )
                break
            except ConnectionRefusedError:
                time.sleep(0.05)
        server.join(timeout=30)
        assert rc == 0
        assert (out_dir / "data.txt").read_bytes() == src.read_bytes()

    def test_send_missing_file_reports_error(self, tmp_path, capsys):
        port_holder = {}
        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        port_holder["port"] = s.getsockname()[1]
        s.listen(1)

        def sink() -> None:
            try:
                conn, _ = s.accept()
                while conn.recv(65536):
                    pass
                conn.close()
            except OSError:
                pass  # listener torn down at test end

        t = threading.Thread(target=sink, daemon=True)
        t.start()
        rc = main(
            ["send", "--port", str(port_holder["port"]), str(tmp_path / "nope.bin")]
        )
        assert rc == 1
        s.close()


class TestBenchAll:
    def test_writes_all_csvs(self, tmp_path, capsys, monkeypatch):
        # Shrink the figure sweeps so "all" completes quickly; table1
        # runs at full size (a couple of seconds of real codecs).
        import repro.bench.experiments as exp

        monkeypatch.setattr(exp, "FIGURE_SIZES", [1024, 1024 * 1024])
        monkeypatch.setattr(
            exp, "_FIGURE_SETUPS",
            {k: (v[0], 1, v[2]) for k, v in exp._FIGURE_SETUPS.items()},
        )
        rc = main(["bench", "all", "--csv-dir", str(tmp_path)])
        assert rc == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {
            "table1.csv", "table2.csv",
            "fig3.csv", "fig4.csv", "fig5.csv", "fig6.csv", "fig7.csv",
            "fig8.csv", "fig9.csv",
        }
        assert (tmp_path / "fig5.csv").read_text().startswith("size_bytes,")
