"""Figure-2 level-update algorithm: exact transcription + properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdocConfig, DivergenceGuard, IncompressibleGuard
from repro.core.adaptation import LevelAdapter, update_level


class TestFigure2Exact:
    """Line-by-line checks against the paper's pseudo-code."""

    def test_empty_queue_returns_min_level(self):
        # Line 1-2: if n=0 return minLevel.
        assert update_level(0, 5, 9) == 0
        assert update_level(0, -5, 9, min_level=1) == 1

    def test_small_queue_nonpositive_delta_halves(self):
        # Lines 3-5: n < 10 and δ <= 0 → l = l/2.
        assert update_level(5, 0, 8) == 4
        assert update_level(9, -3, 8) == 4
        assert update_level(5, -1, 9) == 4  # integer division
        assert update_level(5, 0, 1) == 0

    def test_small_queue_positive_delta_keeps_level(self):
        # n < 10 with δ > 0: no branch applies, level unchanged.
        assert update_level(5, 2, 8) == 8

    def test_mid_queue_steps_by_one(self):
        # Lines 6-10: 10 <= n < 20.
        assert update_level(15, 1, 5) == 6
        assert update_level(15, -1, 5) == 4
        assert update_level(15, 0, 5) == 5

    def test_high_queue_asymmetric_steps(self):
        # Lines 11-15: 20 <= n < 30: +2 on growth, -1 on shrink.
        assert update_level(25, 3, 5) == 7
        assert update_level(25, -3, 5) == 4
        assert update_level(25, 0, 5) == 5

    def test_very_large_queue_only_grows(self):
        # Lines 16-17: n >= 30: +2 on growth, nothing otherwise.
        assert update_level(35, 1, 5) == 7
        assert update_level(35, -10, 5) == 5
        assert update_level(35, 0, 5) == 5

    def test_clamping(self):
        # Lines 18-19.
        assert update_level(35, 1, 10) == 10
        assert update_level(35, 1, 9) == 10
        assert update_level(5, 0, 0) == 0
        assert update_level(15, -1, 3, min_level=3) == 3
        assert update_level(25, 5, 4, max_level=5) == 5

    def test_thresholds_are_parameters(self):
        # With low=2, a queue of 3 is in the "mid" band.
        assert update_level(3, 1, 5, low=2, mid=5, high=8) == 6

    def test_negative_queue_size_rejected(self):
        with pytest.raises(ValueError):
            update_level(-1, 0, 5)


@settings(max_examples=300, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=200),
    delta=st.integers(min_value=-100, max_value=100),
    level=st.integers(min_value=0, max_value=10),
)
def test_result_always_within_bounds(n, delta, level):
    out = update_level(n, delta, level)
    assert 0 <= out <= 10


@settings(max_examples=300, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    delta=st.integers(min_value=-100, max_value=100),
    level=st.integers(min_value=0, max_value=10),
)
def test_step_bounded_unless_halved(n, delta, level):
    """Any move is at most +2, and downward either -1 or a halving."""
    out = update_level(n, delta, level)
    assert out - level <= 2
    assert out >= level // 2 - 0  # halving is the deepest cut


@settings(max_examples=300, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=200),
    delta=st.integers(min_value=-100, max_value=100),
    level=st.integers(min_value=0, max_value=10),
    lo=st.integers(min_value=0, max_value=10),
)
def test_respects_custom_min_level(n, delta, level, lo):
    out = update_level(n, delta, max(level, lo), min_level=lo)
    assert lo <= out <= 10


@settings(max_examples=200, deadline=None)
@given(
    delta=st.integers(min_value=1, max_value=50),
    level=st.integers(min_value=0, max_value=10),
)
def test_growth_never_decreases_level(delta, level):
    """δ > 0 never lowers the level, whatever the queue size."""
    for n in (1, 5, 10, 15, 20, 25, 30, 100):
        assert update_level(n, delta, level) >= level


class TestLevelAdapter:
    def test_first_call_has_zero_delta(self):
        adapter = LevelAdapter(AdocConfig())
        # n=15 with δ=0 in the mid band: level unchanged (0).
        assert adapter.next_level(15, now=0.0) == 0
        assert adapter.history[0].delta == 0

    def test_delta_tracks_queue_changes(self):
        adapter = LevelAdapter(AdocConfig())
        adapter.next_level(10, now=0.0)
        adapter.next_level(14, now=1.0)
        assert adapter.history[1].delta == 4
        adapter.next_level(11, now=2.0)
        assert adapter.history[2].delta == -3

    def test_climb_on_growing_queue(self):
        adapter = LevelAdapter(AdocConfig())
        levels = [adapter.next_level(30 + 5 * i, now=float(i)) for i in range(8)]
        assert levels[-1] == 10, "sustained growth must reach max level"
        assert levels == sorted(levels)

    def test_empty_queue_resets_to_min(self):
        adapter = LevelAdapter(AdocConfig())
        for i in range(8):
            adapter.next_level(30 + 5 * i, now=float(i))
        assert adapter.next_level(0, now=99.0) == 0

    def test_respects_level_bounds_from_config(self):
        cfg = AdocConfig(min_level=2, max_level=4)
        adapter = LevelAdapter(cfg)
        assert adapter.next_level(0, now=0.0) == 2
        for i in range(10):
            adapter.next_level(30 + 5 * i, now=float(i))
        assert adapter.level == 4

    def test_incompressible_holdoff_pins_min(self):
        guard = IncompressibleGuard(holdoff_packets=10)
        adapter = LevelAdapter(AdocConfig(), incompressible=guard)
        for i in range(8):
            adapter.next_level(30 + 5 * i, now=float(i))
        assert adapter.level == 10
        guard.check_packet(1000, 990)  # trip it
        assert adapter.next_level(60, now=9.0) == 0
        assert adapter.history[-1].holdoff

    def test_divergence_veto_recorded_in_trace(self):
        guard = DivergenceGuard(forbid_seconds=1.0)
        guard.observe(0, 1_000_000, 1.0)  # level 0: 1 MB/s
        guard.observe(0, 1_000_000, 1.0)
        guard.observe(2, 100_000, 1.0)
        guard.observe(2, 100_000, 1.0)  # level 2: 0.1 MB/s, 2 windows
        adapter = LevelAdapter(AdocConfig(), divergence=guard)
        adapter.level = 1
        got = adapter.next_level(15, now=0.0)
        adapter2_trace = adapter.history[-1]
        assert adapter2_trace.raw_level == 1  # δ=0 in mid band keeps 1
        # Raise into level 2 on the next growth step; the guard vetoes.
        got = adapter.next_level(19, now=0.1)
        assert got == 0
        assert adapter.history[-1].forbidden
