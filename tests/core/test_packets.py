"""Wire protocol framing: message and record headers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packets import (
    END_LEVEL,
    MESSAGE_HEADER_SIZE,
    RECORD_HEADER_SIZE,
    MessageHeader,
    ProtocolError,
    Record,
    RecordHeader,
    end_record_bytes,
    pack_message_header,
    pack_record_header,
    unpack_message_header,
    unpack_record_header,
)


class TestMessageHeader:
    def test_roundtrip_known_length(self):
        raw = pack_message_header(123456789, length_known=True)
        assert len(raw) == MESSAGE_HEADER_SIZE
        h = unpack_message_header(raw)
        assert h.total_length == 123456789
        assert h.length_known

    def test_roundtrip_unknown_length(self):
        h = unpack_message_header(pack_message_header(0, length_known=False))
        assert not h.length_known
        assert h.total_length == 0

    def test_zero_length_message(self):
        h = unpack_message_header(pack_message_header(0))
        assert h.total_length == 0 and h.length_known

    def test_bad_magic_rejected(self):
        raw = bytearray(pack_message_header(10))
        raw[0] = ord("X")
        with pytest.raises(ProtocolError):
            unpack_message_header(bytes(raw))

    def test_bad_version_rejected(self):
        raw = bytearray(pack_message_header(10))
        raw[2] = 99
        with pytest.raises(ProtocolError):
            unpack_message_header(bytes(raw))

    def test_wrong_size_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_message_header(b"Ad")


class TestRecordHeader:
    def test_roundtrip(self):
        raw = pack_record_header(7, 200_000, 43_210)
        assert len(raw) == RECORD_HEADER_SIZE
        h = unpack_record_header(raw)
        assert (h.level, h.original_size, h.wire_size) == (7, 200_000, 43_210)
        assert not h.is_end

    def test_end_record(self):
        h = unpack_record_header(end_record_bytes())
        assert h.is_end
        assert h.level == END_LEVEL

    def test_nonempty_end_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_record_header(pack_record_header(END_LEVEL, 1, 0))

    def test_invalid_level_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_record_header(pack_record_header(42, 10, 10))

    def test_record_serialize_layout(self):
        rec = Record(3, 100, b"payload")
        wire = rec.serialize()
        hdr = unpack_record_header(wire[:RECORD_HEADER_SIZE])
        assert hdr.level == 3
        assert hdr.original_size == 100
        assert hdr.wire_size == 7
        assert wire[RECORD_HEADER_SIZE:] == b"payload"


@settings(max_examples=200, deadline=None)
@given(
    total=st.integers(min_value=0, max_value=2**63 - 1),
    known=st.booleans(),
)
def test_message_header_roundtrip_property(total, known):
    h = unpack_message_header(pack_message_header(total, known))
    assert h.length_known == known
    if known:
        assert h.total_length == total


@settings(max_examples=200, deadline=None)
@given(
    level=st.integers(min_value=0, max_value=10),
    orig=st.integers(min_value=0, max_value=2**32 - 1),
    wire=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_record_header_roundtrip_property(level, orig, wire):
    h = unpack_record_header(pack_record_header(level, orig, wire))
    assert (h.level, h.original_size, h.wire_size) == (level, orig, wire)
