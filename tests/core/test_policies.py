"""Alternative level-control policies."""

from __future__ import annotations

import pytest

from repro.core import AdocConfig, IncompressibleGuard
from repro.core.policies import (
    POLICIES,
    AimdAdapter,
    FixedLevelAdapter,
    NaiveStepAdapter,
    PaperAdapter,
    ThresholdAdapter,
    make_policy,
)

CFG = AdocConfig()


class TestNaive:
    def test_steps_up_and_down(self):
        a = NaiveStepAdapter(CFG)
        assert a.next_level(10, 0.0) == 0  # first call: delta 0
        assert a.next_level(15, 0.1) == 1
        assert a.next_level(20, 0.2) == 2
        assert a.next_level(18, 0.3) == 1

    def test_reset_on_empty(self):
        a = NaiveStepAdapter(CFG)
        a.level = 7
        assert a.next_level(0, 0.0) == 0


class TestAimd:
    def test_multiplicative_decrease(self):
        a = AimdAdapter(CFG)
        a.level = 8
        a.next_level(20, 0.0)        # first call, delta 0: hold
        assert a.level == 8
        assert a.next_level(15, 0.1) == 4   # shrink: halve
        assert a.next_level(18, 0.2) == 5   # growth: +1


class TestFixed:
    def test_constant(self):
        a = FixedLevelAdapter(CFG, fixed_level=6)
        for n in (0, 5, 40, 200):
            assert a.next_level(n, 0.0) == 6

    def test_clamped_to_config(self):
        a = FixedLevelAdapter(AdocConfig(max_level=4), fixed_level=9)
        assert a.next_level(10, 0.0) == 4


class TestThreshold:
    def test_monotone_in_queue(self):
        a = ThresholdAdapter(CFG)
        levels = [a.next_level(n, 0.0) for n in (0, 5, 15, 25, 30, 60)]
        assert levels == sorted(levels)
        assert levels[0] == 0
        assert levels[-1] == 10


class TestGuardsApply:
    def test_incompressible_holdoff_pins_all_policies(self):
        for name, cls in POLICIES.items():
            guard = IncompressibleGuard(holdoff_packets=5)
            adapter = cls(CFG, None, guard)
            adapter.level = 8
            guard.check_packet(100, 100)
            assert adapter.next_level(40, 0.0) == 0, name


class TestFactory:
    def test_make_policy(self):
        factory = make_policy("aimd")
        adapter = factory(CFG, None, None)
        assert isinstance(adapter, AimdAdapter)

    def test_make_policy_kwargs(self):
        factory = make_policy("fixed", fixed_level=3)
        assert factory(CFG, None, None).next_level(10, 0.0) == 3

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("pid")


class TestInSimulator:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_every_policy_completes_a_transfer(self, name):
        from repro.simulator import profile_by_name, simulate_adoc_message
        from repro.transport import RENATER

        kwargs = {"fixed_level": 5} if name == "fixed" else {}
        r = simulate_adoc_message(
            2 * 1024 * 1024,
            profile_by_name("ascii"),
            RENATER,
            seed=1,
            adapter_factory=make_policy(name, **kwargs),
        )
        assert r.payload_bytes == 2 * 1024 * 1024
        assert r.wire_bytes > 0
