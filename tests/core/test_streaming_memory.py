"""Bounded-memory regression tests for the streaming send path.

The pre-streaming sender's ``send_stream`` read the whole file into
memory (``stream.read()``) before sending.  These tests pin the fix: a
10 MB file must move with peak buffering on the order of
``buffer_size``, not the file size.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.core import AdocConfig, MessageSender
from repro.core.sources import FileSource
from repro.data import ascii_data

FILE_SIZE = 10 * 1024 * 1024


class NullEndpoint:
    """Discards everything (isolates sender memory from transport)."""

    def send(self, data) -> int:
        return len(data)

    def send_vectors(self, buffers) -> int:
        return sum(len(b) for b in buffers)

    def recv(self, n: int) -> bytes:
        return b""

    def close(self) -> None:
        pass


@pytest.fixture(scope="module")
def payload_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("stream") / "payload.bin"
    path.write_bytes(ascii_data(FILE_SIZE, seed=33))
    return path


@pytest.mark.parametrize(
    "levels",
    [(0, 0), (6, 6)],
    ids=["raw-records", "pipeline-zlib6"],
)
def test_send_stream_peak_memory_is_o_buffer_size(payload_file, levels):
    # compress_workers=0 pins the paper's inline pipeline, whose peak
    # buffering is the strictest contract (one buffer in flight);
    # the pooled default is covered by the window-scaled test below.
    cfg = AdocConfig(compress_workers=0).with_levels(*levels)
    sender = MessageSender(NullEndpoint(), cfg)
    with open(payload_file, "rb") as f:
        source = FileSource(f, FILE_SIZE)
        tracemalloc.start()
        try:
            result = sender._send_source(source, cfg)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    assert result.payload_bytes == FILE_SIZE
    # The contract: peak buffering scales with buffer_size, not file
    # size.  The source never hands out more than one buffer at a time
    # (<= 2x buffer_size covers any loop-fill transient) ...
    assert 0 < source.peak_chunk <= 2 * cfg.buffer_size
    # ... and the whole engine — chunk being compressed, compressed
    # output, packets of the previous chunk still queued as views —
    # stays within a few buffers (measured ~2.2x raw, ~3.4x zlib).
    # Anything near FILE_SIZE means whole-file reads are back.
    assert peak <= 4 * cfg.buffer_size, (
        f"peak traced memory {peak} exceeds 4x buffer_size "
        f"({4 * cfg.buffer_size}) for a {FILE_SIZE}-byte file"
    )


def test_send_stream_peak_memory_pooled_is_o_window(payload_file):
    # The pooled pipeline holds an in-flight window of buffers (up to
    # 2x pool workers) by design; peak memory scales with the window,
    # never with the file size.
    from repro.serve.pool import shared_pool

    cfg = AdocConfig().with_levels(6, 6)
    window = 2 * shared_pool(cfg.compress_workers).workers
    sender = MessageSender(NullEndpoint(), cfg)
    with open(payload_file, "rb") as f:
        source = FileSource(f, FILE_SIZE)
        tracemalloc.start()
        try:
            result = sender._send_source(source, cfg)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    assert result.payload_bytes == FILE_SIZE
    # In-flight input buffers plus their compressed outputs parked in
    # the completion FIFO plus queued packet views: all O(window),
    # nothing O(file).  (Measured ~window + 4 buffers; 2x window + 6
    # absorbs allocator noise across worker counts.)
    budget = (2 * window + 6) * cfg.buffer_size
    assert budget < FILE_SIZE  # the bound must stay meaningful
    assert peak <= budget, (
        f"peak traced memory {peak} exceeds (2 * window + 6) x "
        f"buffer_size ({budget}) for a {FILE_SIZE}-byte file"
    )


def test_send_stream_wire_is_decodable_and_sized(payload_file):
    # Sanity companion: the streamed known-length message carries the
    # advertised total and every payload byte.
    cfg = AdocConfig().with_levels(0, 0)
    sender = MessageSender(NullEndpoint(), cfg)
    with open(payload_file, "rb") as f:
        result = sender.send_stream(f)
    n_records = -(-FILE_SIZE // cfg.buffer_size)
    assert result.wire_bytes == 12 + 9 * n_records + FILE_SIZE
