"""Mixing byte-stream reads with message reads on one connection.

The file-mover pattern: a small header message read with ``adoc_read``
followed by a file received with ``adoc_receive_file``.  The boundary
of a message fully consumed by byte-reads must be crossed, so the
message read applies to the *next* message — including when the marker
has not yet been produced by the decompression thread (the drained-
buffer race).
"""

from __future__ import annotations

import io

from repro.core import AdocConfig, AdocSocket
from repro.core.receiver import OutputBuffer
from repro.data import ascii_data
from repro.transport import pipe_pair

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
)


class TestOutputBufferBoundaryCrossing:
    def test_exact_read_consumes_boundary(self):
        buf = OutputBuffer()
        buf.put(b"header")
        buf.put_marker()
        buf.put(b"file-payload")
        buf.put_marker()
        buf.finish()
        assert buf.read(6) == b"header"
        sink = io.BytesIO()
        assert buf.read_until_marker(sink) == 12
        assert sink.getvalue() == b"file-payload"

    def test_drained_buffer_race_marker_after_read(self):
        buf = OutputBuffer()
        buf.put(b"header")
        # Byte-read drains the buffer before the marker is produced.
        assert buf.read(6) == b"header"
        buf.put_marker()  # late boundary: must be treated as crossed
        buf.put(b"next-message")
        buf.put_marker()
        buf.finish()
        sink = io.BytesIO()
        assert buf.read_until_marker(sink) == 12
        assert sink.getvalue() == b"next-message"

    def test_drained_buffer_more_data_keeps_boundary(self):
        buf = OutputBuffer()
        buf.put(b"first-half-")
        assert buf.read(11) == b"first-half-"
        # Same message continues: the deferred skip must be cancelled.
        buf.put(b"second-half")
        buf.put_marker()
        buf.finish()
        sink = io.BytesIO()
        assert buf.read_until_marker(sink) == 11
        assert sink.getvalue() == b"second-half"

    def test_partial_read_keeps_boundary(self):
        buf = OutputBuffer()
        buf.put(b"abcdef")
        buf.put_marker()
        buf.finish()
        assert buf.read(3) == b"abc"
        sink = io.BytesIO()
        # The rest of the same message, up to its boundary.
        assert buf.read_until_marker(sink) == 3
        assert sink.getvalue() == b"def"


class TestMixedModesEndToEnd:
    def test_header_then_file_pattern(self, background):
        a, b = pipe_pair()
        tx, rx = AdocSocket(a, CFG), AdocSocket(b, CFG)
        name = b"payload.bin"
        body = ascii_data(60_000, seed=9)

        def send() -> None:
            tx.write(len(name).to_bytes(2, "big") + name)
            tx.send_file(io.BytesIO(body))

        bg = background(send)
        got_len = int.from_bytes(rx.read_exact(2), "big")
        got_name = rx.read_exact(got_len)
        sink = io.BytesIO()
        n = rx.receive_file(sink)
        bg.join()
        assert got_name == name
        assert n == len(body)
        assert sink.getvalue() == body
        tx.close()
        rx.close()

    def test_alternating_headers_and_files(self, background):
        a, b = pipe_pair()
        tx, rx = AdocSocket(a, CFG), AdocSocket(b, CFG)
        files = [ascii_data(20_000 + 7 * i, seed=i) for i in range(3)]

        def send() -> None:
            for i, body in enumerate(files):
                tx.write(bytes([i]))
                tx.send_file(io.BytesIO(body))

        bg = background(send)
        for i, body in enumerate(files):
            assert rx.read_exact(1) == bytes([i])
            sink = io.BytesIO()
            assert rx.receive_file(sink) == len(body)
            assert sink.getvalue() == body
        bg.join()
        tx.close()
        rx.close()
