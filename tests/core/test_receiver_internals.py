"""Receiver internals: protocol validation, close semantics, joins."""

from __future__ import annotations

import io

import pytest

from repro.core import AdocConfig, ReceiverPipeline
from repro.core.packets import (
    ProtocolError,
    Record,
    end_record_bytes,
    pack_message_header,
    pack_record_header,
)
from repro.transport import TransportClosed, pipe_pair
from repro.transport.base import sendall

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
)


def feed(wire: bytes):
    a, b = pipe_pair()
    rx = ReceiverPipeline(b, CFG)
    sendall(a, wire)
    a.close()
    return rx


def read_all(rx, cap=1 << 20) -> bytes:
    out = bytearray()
    while True:
        chunk = rx.read(cap)
        if not chunk:
            return bytes(out)
        out += chunk


class TestProtocolValidation:
    def test_records_overflowing_length_rejected(self):
        wire = pack_message_header(5) + Record(0, 10, b"0123456789").serialize()
        rx = feed(wire)
        with pytest.raises((ProtocolError, TransportClosed)):
            if read_all(rx) is not None:
                raise TransportClosed("should have errored")
        rx.close()

    def test_unexpected_end_in_known_length_rejected(self):
        wire = pack_message_header(10) + end_record_bytes()
        rx = feed(wire)
        with pytest.raises((ProtocolError, TransportClosed)):
            read_all(rx)
            raise TransportClosed("should have errored")
        rx.close()

    def test_unknown_length_needs_end_record(self):
        # Stream closes before the END record: truncated message.  The
        # error may surface on the first or a later read depending on
        # thread interleaving; either way it must surface.
        wire = pack_message_header(0, length_known=False) + Record(
            0, 3, b"abc"
        ).serialize()
        rx = feed(wire)
        with pytest.raises((ProtocolError, TransportClosed)):
            out = bytearray()
            while True:
                chunk = rx.read(64)
                if not chunk:
                    raise TransportClosed("eof mid-message")
                out += chunk
        rx.close()

    def test_unknown_length_with_end_record_ok(self):
        wire = (
            pack_message_header(0, length_known=False)
            + Record(0, 3, b"abc").serialize()
            + end_record_bytes()
        )
        rx = feed(wire)
        assert read_all(rx) == b"abc"
        rx.close()

    def test_bad_record_level_rejected(self):
        wire = pack_message_header(4) + pack_record_header(42, 4, 4) + b"xxxx"
        rx = feed(wire)
        with pytest.raises((ProtocolError, TransportClosed)):
            read_all(rx)
            raise TransportClosed("should have errored")
        rx.close()


class TestLifecycle:
    def test_close_frees_pending_data(self):
        wire = pack_message_header(6) + Record(0, 6, b"unread").serialize()
        rx = feed(wire)
        # Never read; close must not hang and must release buffers.
        rx.close()
        rx.join(timeout=5)

    def test_join_after_eof(self):
        wire = pack_message_header(2) + Record(0, 2, b"ok").serialize()
        rx = feed(wire)
        assert read_all(rx) == b"ok"
        rx.join(timeout=5)
        rx.close()

    def test_read_after_close_eofs(self):
        a, b = pipe_pair()
        rx = ReceiverPipeline(b, CFG)
        rx.close()
        assert rx.read(10) == b""
        a.close()

    def test_receive_into_clean_idle_eof(self):
        a, b = pipe_pair()
        rx = ReceiverPipeline(b, CFG)
        a.close()
        assert rx.receive_into(io.BytesIO()) == 0
        rx.close()
