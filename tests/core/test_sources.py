"""ChunkSource / RangeSource: the streaming engine's input contract."""

from __future__ import annotations

import io
import threading

import pytest

from repro.core.sources import (
    BytesSource,
    FileSource,
    RangeSource,
    StreamSource,
    source_for_stream,
    stream_size,
)


class _Dribble(io.RawIOBase):
    """Readable stream that returns at most ``trickle`` bytes per read."""

    def __init__(self, payload: bytes, trickle: int, seekable: bool = False) -> None:
        self._buf = io.BytesIO(payload)
        self._trickle = trickle
        self._seekable = seekable

    def readable(self) -> bool:
        return True

    def read(self, n: int = -1) -> bytes:
        if n is None or n < 0:
            return self._buf.read()
        return self._buf.read(min(n, self._trickle))

    def seekable(self) -> bool:
        return self._seekable

    def tell(self) -> int:
        if not self._seekable:
            raise OSError("not seekable")
        return self._buf.tell()

    def seek(self, pos: int, whence: int = 0) -> int:
        if not self._seekable:
            raise OSError("not seekable")
        return self._buf.seek(pos, whence)


class TestStreamSize:
    def test_seekable(self):
        f = io.BytesIO(b"x" * 100)
        f.read(30)
        assert stream_size(f) == 70
        assert f.tell() == 30  # position restored

    def test_unseekable(self):
        assert stream_size(_Dribble(b"abc", 1)) is None


class TestBytesSource:
    def test_zero_copy_views(self):
        payload = b"hello world" * 100
        src = BytesSource(payload)
        assert src.zero_copy
        assert src.length == len(payload)
        chunk = src.read(64)
        assert isinstance(chunk, memoryview)
        assert chunk.obj is payload  # borrows, never copies
        assert bytes(chunk) == payload[:64]

    def test_sequential_and_exhaustion(self):
        src = BytesSource(b"0123456789")
        assert bytes(src.read(4)) == b"0123"
        assert bytes(src.read(4)) == b"4567"
        assert bytes(src.read(4)) == b"89"
        assert len(src.read(4)) == 0

    def test_accepts_any_buffer(self):
        assert bytes(BytesSource(bytearray(b"ab")).read(2)) == b"ab"
        assert bytes(BytesSource(memoryview(b"cd")).read(2)) == b"cd"


class TestFileSource:
    def test_loop_fills_short_reads(self):
        payload = bytes(range(256)) * 40  # 10240 bytes
        src = FileSource(_Dribble(payload, trickle=700, seekable=True), len(payload))
        assert src.length == len(payload)
        first = src.read(4096)
        assert first == payload[:4096]  # filled despite 700-byte trickle
        rest = bytearray(first)
        while True:
            chunk = src.read(4096)
            if not chunk:
                break
            assert len(chunk) <= 4096
            rest += chunk
        assert bytes(rest) == payload
        assert src.peak_chunk <= 4096

    def test_not_zero_copy(self):
        assert not FileSource(io.BytesIO(b"x"), 1).zero_copy


class TestStreamSource:
    def test_short_reads_pass_through(self):
        src = StreamSource(_Dribble(b"a" * 1000, trickle=100))
        assert src.length is None
        assert len(src.read(4096)) == 100  # pipe-like: not accumulated

    def test_read_exact_accumulates(self):
        src = StreamSource(_Dribble(b"a" * 1000, trickle=100))
        assert len(src.read_exact(350)) == 350
        assert len(src.read_exact(10_000)) == 650  # bounded by EOF


class TestSourceForStream:
    def test_seekable_gets_sized_source(self):
        src = source_for_stream(io.BytesIO(b"x" * 50))
        assert isinstance(src, FileSource)
        assert src.length == 50

    def test_pipe_gets_stream_source(self):
        assert isinstance(source_for_stream(_Dribble(b"x", 1)), StreamSource)


class TestRangeSource:
    def test_bytes_pread_is_view(self):
        payload = b"0123456789" * 10
        src = RangeSource(payload)
        assert src.total == len(payload)
        chunk = src.pread(10, 10)
        assert isinstance(chunk, memoryview)
        assert bytes(chunk) == payload[10:20]
        assert bytes(src.pread(95, 50)) == payload[95:]  # clamped

    def test_file_pread(self):
        payload = bytes(range(256)) * 16
        src = RangeSource(io.BytesIO(payload))
        assert src.total == len(payload)
        assert src.pread(100, 50) == payload[100:150]
        assert src.pread(len(payload) - 5, 50) == payload[-5:]
        assert src.pread(len(payload) + 10, 50) == b""

    def test_file_pread_concurrent(self):
        payload = bytes(range(256)) * 256  # 64 KiB
        src = RangeSource(io.BytesIO(payload))
        errors: list[AssertionError] = []

        def worker(start: int) -> None:
            try:
                for off in range(start, len(payload), 4096):
                    assert src.pread(off, 1024) == payload[off : off + 1024]
            except AssertionError as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i * 1024,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_pipe_rejected(self):
        with pytest.raises(ValueError, match="seekable"):
            RangeSource(_Dribble(b"x", 1))

    def test_negative_args_rejected(self):
        src = RangeSource(b"abc")
        with pytest.raises(ValueError):
            src.pread(-1, 1)
        with pytest.raises(ValueError):
            src.pread(0, -1)
