"""Sender/receiver pipelines over in-memory pipes: full data path."""

from __future__ import annotations

import io

import pytest

from repro.core import AdocConfig, MessageSender, ReceiverPipeline
from repro.core.receiver import OutputBuffer
from repro.data import ascii_data, binary_data, incompressible_data
from repro.transport import pipe_pair

#: Small thresholds so pipeline paths engage without megabytes of data.
FAST_CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    # In-memory pipes are "infinitely fast": disable the fast-network
    # bypass so the adaptive pipeline actually runs.
    fast_network_bps=float("inf"),
)


def transfer(data: bytes, config: AdocConfig, background, reader_chunks: int = 1 << 20):
    a, b = pipe_pair()
    sender = MessageSender(a, config)
    receiver = ReceiverPipeline(b, config)
    bg = background(sender.send, data)
    out = bytearray()
    while len(out) < len(data):
        chunk = receiver.read(min(reader_chunks, len(data) - len(out)))
        if not chunk:
            break
        out += chunk
    result = bg.join()
    a.close()
    receiver.close()
    return bytes(out), result


class TestSmallMessagePath:
    def test_small_message_raw_no_pipeline(self, background):
        data = b"tiny payload"
        got, result = transfer(data, FAST_CFG, background)
        assert got == data
        assert not result.pipeline_used
        assert result.wire_bytes == len(data) + 12 + 9  # headers only

    def test_empty_message(self, background):
        a, b = pipe_pair()
        sender = MessageSender(a, FAST_CFG)
        receiver = ReceiverPipeline(b, FAST_CFG)
        bg = background(sender.send, b"")
        result = bg.join()
        assert result.payload_bytes == 0
        assert result.wire_bytes == 12
        # Next message still parses fine after an empty one.
        bg2 = background(sender.send, b"after-empty")
        assert receiver.read(11) == b"after-empty"
        bg2.join()
        a.close()
        receiver.close()


class TestPipelinePath:
    @pytest.mark.parametrize(
        "gen", [ascii_data, binary_data, incompressible_data], ids=["ascii", "binary", "random"]
    )
    def test_roundtrip_all_data_classes(self, background, gen):
        data = gen(100_000, seed=1)
        got, result = transfer(data, FAST_CFG, background)
        assert got == data
        assert result.pipeline_used
        assert result.payload_bytes == len(data)

    def test_compressible_data_shrinks_on_wire(self, background):
        data = ascii_data(200_000, seed=2)
        got, result = transfer(data, FAST_CFG, background)
        assert got == data
        assert result.wire_bytes < len(data)
        assert result.compression_ratio > 1.2

    def test_incompressible_data_bounded_overhead(self, background):
        data = incompressible_data(200_000, seed=3)
        got, result = transfer(data, FAST_CFG, background)
        assert got == data
        # Framing overhead only: headers per record/packet, < 2%.
        assert result.wire_bytes < len(data) * 1.02

    def test_guard_trips_on_incompressible(self, background):
        data = incompressible_data(300_000, seed=4)
        cfg = AdocConfig(
            buffer_size=16 * 1024,
            packet_size=2 * 1024,
            slice_size=2 * 1024,
            small_message_threshold=8 * 1024,
            probe_size=4 * 1024,
            fast_network_bps=float("inf"),
            min_level=1,  # force compression attempts so the guard fires
            max_level=10,
        )
        got, result = transfer(data, cfg, background)
        assert got == data
        assert result.guard_trips > 0

    def test_multiple_messages_same_connection(self, background):
        a, b = pipe_pair()
        sender = MessageSender(a, FAST_CFG)
        receiver = ReceiverPipeline(b, FAST_CFG)
        msgs = [ascii_data(50_000, seed=i) for i in range(4)]
        for m in msgs:
            bg = background(sender.send, m)
            out = bytearray()
            while len(out) < len(m):
                chunk = receiver.read(len(m) - len(out))
                assert chunk, "premature EOF"
                out += chunk
            assert bytes(out) == m
            bg.join()
        a.close()
        receiver.close()


class TestForcedAndDisabled:
    def test_forced_compression_small_message(self, background):
        cfg = FAST_CFG.with_levels(1, 10)
        data = b"a" * 4000  # below small threshold, but forced
        got, result = transfer(data, cfg, background)
        assert got == data
        assert result.pipeline_used
        assert result.wire_bytes < len(data)

    def test_disabled_compression_large_message(self, background):
        cfg = FAST_CFG.with_levels(0, 0)
        data = ascii_data(100_000, seed=5)
        got, result = transfer(data, cfg, background)
        assert got == data
        assert not result.pipeline_used
        assert result.wire_bytes >= len(data)


class TestFileStreaming:
    def test_send_seekable_stream(self, background):
        data = ascii_data(60_000, seed=6)
        a, b = pipe_pair()
        sender = MessageSender(a, FAST_CFG)
        receiver = ReceiverPipeline(b, FAST_CFG)
        bg = background(sender.send_stream, io.BytesIO(data))
        sink = io.BytesIO()
        n = receiver.receive_into(sink)
        result = bg.join()
        assert n == len(data)
        assert sink.getvalue() == data
        assert result.payload_bytes == len(data)
        a.close()
        receiver.close()

    def test_send_unseekable_stream_uses_end_record(self, background):
        data = binary_data(80_000, seed=7)

        class Unseekable(io.RawIOBase):
            def __init__(self, payload: bytes) -> None:
                self._buf = io.BytesIO(payload)

            def readable(self) -> bool:
                return True

            def read(self, n: int = -1) -> bytes:
                return self._buf.read(n)

            def seekable(self) -> bool:
                return False

            def tell(self):
                raise OSError("not seekable")

        a, b = pipe_pair()
        sender = MessageSender(a, FAST_CFG)
        receiver = ReceiverPipeline(b, FAST_CFG)
        bg = background(sender.send_stream, Unseekable(data))
        sink = io.BytesIO()
        n = receiver.receive_into(sink)
        result = bg.join()
        assert n == len(data)
        assert sink.getvalue() == data
        assert result.pipeline_used
        a.close()
        receiver.close()


class TestOutputBuffer:
    def test_read_skips_markers(self):
        buf = OutputBuffer()
        buf.put(b"abc")
        buf.put_marker()
        buf.put(b"def")
        buf.finish()
        assert buf.read(6) == b"abc"  # stops at the marker boundary
        assert buf.read(6) == b"def"
        assert buf.read(1) == b""

    def test_read_until_marker(self):
        buf = OutputBuffer()
        buf.put(b"abc")
        buf.put(b"def")
        buf.put_marker()
        buf.put(b"xyz")
        buf.finish()
        sink = io.BytesIO()
        assert buf.read_until_marker(sink) == 6
        assert sink.getvalue() == b"abcdef"
        assert buf.read(3) == b"xyz"

    def test_deferred_error_raised_to_reader(self):
        buf = OutputBuffer()
        buf.finish(RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            buf.read(1)

    def test_eof_before_marker_with_no_data(self):
        buf = OutputBuffer()
        buf.finish()
        assert buf.read_until_marker(io.BytesIO()) == 0
