"""Pool-backed blocking compression: ordering, degradation, teardown.

The blocking engine's compression stage runs on the process-wide shared
:class:`~repro.serve.pool.WorkerPool` by default
(``AdocConfig.compress_workers``).  These tests pin the contracts that
make that safe:

* the wire is byte-identical to the inline path even when workers
  complete out of order (the pool's per-key FIFO reinsertion);
* a codec failure mid-stream — with other buffers in flight — degrades
  exactly like inline: the failed buffer ships raw, the rest of the
  stream pins to level 0, the payload survives;
* the shared pool's threads reap on ``shutdown_shared_pool`` and the
  pool is lazily recreated afterwards;
* ``compress_workers=0`` never touches the shared pool.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import pytest

from repro.core import AdocConfig, AdocSocket, MessageSender
from repro.core import sender as sender_mod
from repro.core.compressor import compress_buffer
from repro.serve import pool as pool_mod
from repro.serve.pool import SHARED_POOL_NAME, shared_pool, shutdown_shared_pool
from repro.data import ascii_data
from repro.transport import pipe_pair

# Small buffers so a modest message spans many of them; forced zlib-6
# keeps every level decision deterministic (timing cannot change the
# wire), which is what lets the byte-identity assertions below hold.
CFG = AdocConfig(
    buffer_size=8 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=4 * 1024,
    probe_size=2 * 1024,
).with_levels(6, 6)

N_BUFFERS = 12
DATA = ascii_data(N_BUFFERS * CFG.buffer_size, seed=9)


class CollectEndpoint:
    """Endpoint that records every byte written to it."""

    def __init__(self) -> None:
        self.wire = bytearray()

    def send(self, data) -> int:
        self.wire += data
        return len(data)

    def send_vectors(self, buffers) -> int:
        n = 0
        for b in buffers:
            self.wire += b
            n += len(b)
        return n

    def recv(self, n: int) -> bytes:
        return b""

    def close(self) -> None:
        pass


def send_wire(cfg: AdocConfig, data: bytes = DATA) -> tuple[bytes, object]:
    ep = CollectEndpoint()
    result = MessageSender(ep, cfg).send(data)
    return bytes(ep.wire), result


def shared_pool_threads() -> list[threading.Thread]:
    prefix = f"adoc-{SHARED_POOL_NAME}-"
    return [t for t in threading.enumerate() if t.name.startswith(prefix)]


class TestInOrderReinsertion:
    def test_wire_identical_to_inline_under_out_of_order_completion(
        self, monkeypatch
    ):
        """Early buffers finish *last*; the wire must not notice.

        The first buffers sleep longest, so with several in flight the
        completion order is roughly the reverse of submission order —
        the pool's per-key reorder buffer has to restore FIFO before
        anything reaches the packet queue.
        """
        baseline, base_result = send_wire(replace(CFG, compress_workers=0))

        calls: list[str] = []
        lock = threading.Lock()

        def slow_early(buf, level, guard, config):
            with lock:
                idx = len(calls)
                calls.append(threading.current_thread().name)
            time.sleep(max(0.0, (N_BUFFERS - idx) * 0.01))
            return compress_buffer(buf, level, guard, config)

        monkeypatch.setattr(sender_mod, "compress_buffer", slow_early)
        wire, result = send_wire(CFG)

        assert wire == baseline
        assert result.wire_bytes == base_result.wire_bytes
        assert result.payload_bytes == len(DATA)
        prefix = f"adoc-{SHARED_POOL_NAME}-"
        assert any(name.startswith(prefix) for name in calls), (
            "compression never ran on the shared pool"
        )

    def test_pooled_default_wire_matches_inline(self):
        """No fault injection: the plain default path is byte-identical."""
        inline, _ = send_wire(replace(CFG, compress_workers=0))
        pooled, result = send_wire(CFG)
        assert pooled == inline
        assert result.pipeline_used


class TestDegradation:
    def test_codec_failure_mid_stream_with_workers_in_flight(
        self, monkeypatch
    ):
        """Buffer 4 blows up while its neighbours are still compressing.

        The failed buffer must ship raw, every *later* submission must
        pin to level 0, and the message must stay decodable — the
        receiver needs no special handling because raw records are
        always legal.
        """
        fail_at = 4
        seen: list[int] = []
        lock = threading.Lock()

        def flaky(buf, level, guard, config):
            with lock:
                idx = len(seen)
                seen.append(level)
            time.sleep(0.005)  # keep several buffers genuinely in flight
            if idx == fail_at:
                raise RuntimeError("injected codec failure")
            return compress_buffer(buf, level, guard, config)

        monkeypatch.setattr(sender_mod, "compress_buffer", flaky)
        wire, result = send_wire(CFG)

        assert result.degraded
        assert result.payload_bytes == len(DATA)
        # Level-0 packets exist (the failed buffer and the pinned tail).
        assert result.levels_used.get(0, 0) > 0
        # The stream pins to raw once the failure is *known*; with the
        # slow-start window the discovery lags a few buffers, but the
        # tail of the submissions must all be raw.
        assert seen[-1] == 0
        # The payload survives: decode the captured wire byte stream.
        a, b = pipe_pair()
        try:
            rx = AdocSocket(b, CFG)
            done = threading.Event()
            out: list[bytes] = []

            def reader():
                out.append(rx.read_exact(len(DATA)))
                done.set()

            t = threading.Thread(target=reader, daemon=True)
            t.start()
            a.send(wire)
            assert done.wait(30.0), "receiver did not finish"
            t.join(5.0)
            assert out[0] == DATA
        finally:
            a.close()
            b.close()


class TestSharedPoolLifecycle:
    def test_shutdown_reaps_threads_and_next_use_recreates(self):
        pool = shared_pool()
        assert shared_pool_threads(), "shared pool started no threads"
        assert shared_pool() is pool  # cached

        shutdown_shared_pool()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and shared_pool_threads():
            time.sleep(0.02)
        assert not shared_pool_threads(), "shared pool threads leaked"

        # Lazily recreated on next use, and actually usable.
        wire, result = send_wire(CFG)
        assert result.payload_bytes == len(DATA)
        assert shared_pool_threads()

    def test_worker_count_honoured_on_creation(self):
        shutdown_shared_pool()
        try:
            pool = shared_pool(3)
            assert pool.workers == 3
            # Later callers share it regardless of their own setting.
            assert shared_pool(5) is pool
        finally:
            shutdown_shared_pool()


class TestInlineFallback:
    def test_compress_workers_zero_never_touches_the_pool(self, monkeypatch):
        def explode(workers=None):
            raise AssertionError("shared_pool must not be called")

        monkeypatch.setattr(pool_mod, "shared_pool", explode)
        wire, result = send_wire(replace(CFG, compress_workers=0))
        assert result.payload_bytes == len(DATA)
        assert result.pipeline_used

    def test_short_known_length_message_stays_inline(self, monkeypatch):
        def explode(workers=None):
            raise AssertionError("short messages must compress inline")

        monkeypatch.setattr(pool_mod, "shared_pool", explode)
        # Three buffers: under the pooled-engagement threshold.
        data = ascii_data(3 * CFG.buffer_size, seed=2)
        wire, result = send_wire(CFG, data)
        assert result.payload_bytes == len(data)

    def test_pool_closed_mid_message_falls_back_inline(self, monkeypatch):
        """A shutdown racing a transfer finishes the message inline.

        A helper thread closes the shared pool once compression is
        demonstrably under way (closing from inside a worker would
        self-join).  The forced level keeps the wire deterministic, so
        whichever buffers ended up inline, the bytes must match the
        pure-inline send exactly.
        """
        pool = shared_pool()
        started = threading.Event()

        def slow(buf, level, guard, config):
            started.set()
            time.sleep(0.01)
            return compress_buffer(buf, level, guard, config)

        monkeypatch.setattr(sender_mod, "compress_buffer", slow)

        def closer():
            started.wait(10.0)
            pool.close(join_timeout=10.0)

        t = threading.Thread(target=closer, daemon=True)
        t.start()
        try:
            wire, result = send_wire(CFG)
        finally:
            t.join(20.0)
            shutdown_shared_pool()
        inline, _ = send_wire(replace(CFG, compress_workers=0))
        assert wire == inline
        assert result.payload_bytes == len(DATA)


class TestConfigValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="compress_workers"):
            AdocConfig(compress_workers=-1)

    def test_zero_and_none_accepted(self):
        assert AdocConfig(compress_workers=0).compress_workers == 0
        assert AdocConfig().compress_workers is None
