"""Sender internals: the probe, bypass ladder, stream sizing."""

from __future__ import annotations

import io

import pytest

from repro.core import AdocConfig, MessageSender, SendResult
from repro.core.sender import _stream_size
from repro.transport import pipe_pair, shaped_pair

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
)


class TestProbe:
    def test_probe_feeds_level0_divergence_records(self, background):
        """The probe doubles as level-0 bandwidth evidence: two windows,
        satisfying the guard's MIN_SAMPLES rule (DESIGN.md §7.3)."""
        a, b = shaped_pair(
            bandwidth_bps=80e6, latency_s=1e-4, buffer_bytes=2 * 1024, seed=1
        )
        sender = MessageSender(a, CFG)
        drainer = background(_drain_until_eof, b)
        sender.send(b"z" * 200_000)
        a.close()
        drainer.join()
        rec = sender.divergence._records.get(0)
        assert rec is not None
        assert rec.samples >= 2
        # The record reflects the shaped line rate, not memcpy speed.
        assert rec.bandwidth < 80e6  # bytes/s upper bound sanity

    def test_fast_link_triggers_fast_path(self, background):
        # Unshaped pipes absorb the probe instantly -> "very fast".
        a, b = pipe_pair()
        sender = MessageSender(a, CFG)
        drainer = background(_drain_until_eof, b)
        result = sender.send(b"q" * 100_000)
        a.close()
        drainer.join()
        assert result.fast_path
        assert not result.pipeline_used
        assert result.probe_bps > CFG.fast_network_bps

    def test_slow_link_engages_pipeline(self, background):
        a, b = shaped_pair(
            bandwidth_bps=200e6, latency_s=1e-4, buffer_bytes=2 * 1024, seed=2
        )
        sender = MessageSender(a, CFG)
        drainer = background(_drain_until_eof, b)
        result = sender.send(b"q" * 100_000)
        a.close()
        drainer.join()
        assert result.pipeline_used
        assert result.probe_bps < CFG.fast_network_bps


class TestBypassLadder:
    def test_small_message_bypass(self):
        sender = MessageSender(_NullEndpoint(), CFG)
        assert sender._should_bypass(100, CFG)
        assert not sender._should_bypass(100_000, CFG)

    def test_forced_never_bypasses(self):
        cfg = CFG.with_levels(1, 10)
        sender = MessageSender(_NullEndpoint(), cfg)
        assert not sender._should_bypass(1, cfg)

    def test_disabled_always_bypasses(self):
        cfg = CFG.with_levels(0, 0)
        sender = MessageSender(_NullEndpoint(), cfg)
        assert sender._should_bypass(10**9, cfg)


class TestStreamSize:
    def test_seekable(self):
        f = io.BytesIO(b"0123456789")
        assert _stream_size(f) == 10
        f.read(4)
        assert _stream_size(f) == 6  # remaining, not total
        assert f.tell() == 4  # position restored

    def test_unseekable_returns_none(self):
        class NoSeek(io.RawIOBase):
            def tell(self):
                raise OSError("unseekable")

        assert _stream_size(NoSeek()) is None


class TestSendResult:
    def test_ratio_zero_wire(self):
        assert SendResult(0, 0, 0.0).compression_ratio == 1.0

    def test_ratio(self):
        assert SendResult(1000, 250, 0.0).compression_ratio == 4.0


class _NullEndpoint:
    def send(self, data):
        return len(data)

    def recv(self, n):
        return b""

    def close(self):
        pass


def _drain_until_eof(endpoint) -> None:
    while endpoint.recv(65536):
        pass
