"""PacketQueue: blocking semantics, close/drain, thread interplay."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import PacketQueue, QueueClosed, QueuedPacket


def pkt(i: int, level: int = 0) -> QueuedPacket:
    return QueuedPacket(bytes([i % 256]) * 8, level, 8, buffer_id=i)


class TestBasics:
    def test_fifo_order(self):
        q = PacketQueue(16)
        for i in range(5):
            q.put(pkt(i))
        got = [q.get().buffer_id for _ in range(5)]
        assert got == list(range(5))

    def test_size_counts_packets(self):
        q = PacketQueue(16)
        assert q.size() == 0
        q.put(pkt(0))
        q.put(pkt(1))
        assert q.size() == 2
        q.get()
        assert q.size() == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PacketQueue(0)

    def test_peak_and_total_counters(self):
        q = PacketQueue(16)
        for i in range(6):
            q.put(pkt(i))
        for _ in range(6):
            q.get()
        assert q.total_put == 6
        assert q.peak_size == 6


class TestClose:
    def test_get_drains_then_none(self):
        q = PacketQueue(16)
        q.put(pkt(0))
        q.put(pkt(1))
        q.close()
        assert q.get() is not None
        assert q.get() is not None
        assert q.get() is None

    def test_put_after_close_raises(self):
        q = PacketQueue(16)
        q.close()
        with pytest.raises(QueueClosed):
            q.put(pkt(0))

    def test_close_wakes_blocked_getter(self):
        q = PacketQueue(16)
        got = []

        def consume():
            got.append(q.get())

        t = threading.Thread(target=consume, daemon=True)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=5)
        assert not t.is_alive()
        assert got == [None]

    def test_close_wakes_blocked_putter(self):
        q = PacketQueue(1)
        q.put(pkt(0))
        errors = []

        def produce():
            try:
                q.put(pkt(1))
            except QueueClosed as exc:
                errors.append(exc)

        t = threading.Thread(target=produce, daemon=True)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=5)
        assert not t.is_alive()
        assert len(errors) == 1


class TestBlocking:
    def test_put_blocks_at_capacity(self):
        q = PacketQueue(2)
        q.put(pkt(0))
        q.put(pkt(1))
        state = {"done": False}

        def produce():
            q.put(pkt(2))
            state["done"] = True

        t = threading.Thread(target=produce, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not state["done"], "put must block while full"
        q.get()
        t.join(timeout=5)
        assert state["done"]

    def test_producer_consumer_stress(self):
        q = PacketQueue(8)
        n = 500
        seen = []

        def produce():
            for i in range(n):
                q.put(pkt(i))
            q.close()

        def consume():
            while True:
                item = q.get()
                if item is None:
                    return
                seen.append(item.buffer_id)

        tp = threading.Thread(target=produce, daemon=True)
        tc = threading.Thread(target=consume, daemon=True)
        tp.start()
        tc.start()
        tp.join(timeout=20)
        tc.join(timeout=20)
        assert seen == list(range(n))
        assert q.peak_size <= 8
