"""Divergence guard: bandwidth records, vetoes, forbid windows."""

from __future__ import annotations

from repro.core import BandwidthRecord, DivergenceGuard


class TestBandwidthRecord:
    def test_first_observation_sets_value(self):
        r = BandwidthRecord()
        r.observe(100.0)
        assert r.bandwidth == 100.0
        assert r.samples == 1

    def test_ewma_blends(self):
        r = BandwidthRecord()
        r.observe(100.0, alpha=0.5)
        r.observe(200.0, alpha=0.5)
        assert r.bandwidth == 150.0


class TestGuard:
    def test_level_zero_never_vetoed(self):
        g = DivergenceGuard()
        g.observe(0, 10, 1.0)
        assert g.filter_level(0, now=0.0) == 0

    def test_unrecorded_level_allowed_to_collect(self):
        g = DivergenceGuard()
        g.observe(0, 1_000_000, 1.0)
        # Level 5 has never run: let it run so a record can form.
        assert g.filter_level(5, now=0.0) == 5

    def test_worse_level_vetoed_and_forbidden(self):
        g = DivergenceGuard(forbid_seconds=1.0)
        g.observe(0, 2_000_000, 1.0)   # 2 MB/s raw
        g.observe(0, 2_000_000, 1.0)   # (records need >= 2 windows)
        g.observe(5, 500_000, 1.0)     # 0.5 MB/s at level 5
        assert g.filter_level(5, now=10.0) == 0
        assert g.is_forbidden(5, now=10.5)
        assert not g.is_forbidden(5, now=11.1)

    def test_forbid_window_expires_and_level_retried(self):
        g = DivergenceGuard(forbid_seconds=1.0)
        g.observe(0, 2_000_000, 1.0)
        g.observe(0, 2_000_000, 1.0)
        g.observe(5, 500_000, 1.0)
        g.filter_level(5, now=0.0)  # forbids 5 until 1.0
        assert g.filter_level(5, now=0.5) == 0  # still forbidden
        # After expiry the record still says "worse", so the veto
        # re-fires — but only after the window lapses, as the paper
        # specifies ("we let AdOC try this level again").
        out = g.filter_level(5, now=1.5)
        assert out == 0
        assert g.is_forbidden(5, now=1.6)

    def test_better_higher_level_allowed(self):
        g = DivergenceGuard()
        g.observe(0, 1_000_000, 1.0)
        g.observe(0, 1_000_000, 1.0)
        g.observe(5, 3_000_000, 1.0)  # level 5 delivers more payload/s
        assert g.filter_level(5, now=0.0) == 5

    def test_single_window_record_not_trusted(self):
        """One (possibly congested) window is not evidence against a
        level: MIN_SAMPLES gates the comparison."""
        g = DivergenceGuard()
        g.observe(0, 9_000_000, 1.0)  # one spectacular raw window
        g.observe(5, 1_000_000, 1.0)
        assert g.filter_level(5, now=0.0) == 5

    def test_margin_prevents_noise_flapping(self):
        g = DivergenceGuard()
        g.observe(0, 1_200_000, 1.0)
        g.observe(0, 1_200_000, 1.0)
        g.observe(5, 1_000_000, 1.0)  # 20% worse: within the 30% margin
        assert g.filter_level(5, now=0.0) == 5

    def test_fallback_picks_best_recorded_lower_level(self):
        g = DivergenceGuard()
        for _ in range(2):
            g.observe(0, 1_000_000, 1.0)
            g.observe(2, 3_000_000, 1.0)
        g.observe(5, 500_000, 1.0)
        assert g.filter_level(5, now=0.0) == 2

    def test_fallback_skips_forbidden_lower_levels(self):
        g = DivergenceGuard(forbid_seconds=10.0)
        for _ in range(2):
            g.observe(0, 1_000_000, 1.0)
            g.observe(2, 3_000_000, 1.0)
            g.observe(3, 2_500_000, 1.0)
        g.observe(5, 500_000, 1.0)
        g.filter_level(5, now=0.0)          # falls to 2? no: forbids 5
        g._forbidden_until[2] = 100.0        # force 2 unavailable
        assert g.filter_level(5, now=1.0) == 3

    def test_zero_elapsed_observation_ignored(self):
        g = DivergenceGuard()
        g.observe(3, 100, 0.0)
        assert g.recorded_bandwidth(3) is None

    def test_observation_accumulates_ewma(self):
        g = DivergenceGuard(alpha=0.5)
        g.observe(3, 1_000_000, 1.0)
        g.observe(3, 3_000_000, 1.0)
        assert g.recorded_bandwidth(3) == 2_000_000.0
