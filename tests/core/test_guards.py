"""Incompressible-data guard (paper section 5)."""

from __future__ import annotations

import pytest

from repro.core import IncompressibleGuard


def test_good_ratio_does_not_trip():
    g = IncompressibleGuard(ratio_threshold=0.95, holdoff_packets=10)
    assert not g.check_packet(8192, 4000)
    assert not g.active


def test_poor_ratio_trips_and_holds():
    g = IncompressibleGuard(ratio_threshold=0.95, holdoff_packets=10)
    assert g.check_packet(8192, 8100)  # saved < 5%
    assert g.active
    assert g.trips == 1


def test_expansion_trips():
    g = IncompressibleGuard()
    assert g.check_packet(8192, 9000)


def test_holdoff_expires_after_n_packets():
    g = IncompressibleGuard(holdoff_packets=3)
    g.check_packet(100, 100)
    assert g.active
    for _ in range(3):
        g.note_packet_emitted()
    assert not g.active


def test_retrip_resets_holdoff():
    g = IncompressibleGuard(holdoff_packets=5)
    g.check_packet(100, 100)
    for _ in range(4):
        g.note_packet_emitted()
    g.check_packet(100, 100)  # trips again
    assert g.trips == 2
    for _ in range(4):
        g.note_packet_emitted()
    assert g.active  # 4 of 5 consumed
    g.note_packet_emitted()
    assert not g.active


def test_note_without_trip_is_noop():
    g = IncompressibleGuard()
    g.note_packet_emitted()
    assert not g.active


def test_zero_original_size_ignored():
    g = IncompressibleGuard()
    assert not g.check_packet(0, 0)


def test_threshold_validation():
    with pytest.raises(ValueError):
        IncompressibleGuard(ratio_threshold=0.0)
    with pytest.raises(ValueError):
        IncompressibleGuard(ratio_threshold=1.5)
    with pytest.raises(ValueError):
        IncompressibleGuard(holdoff_packets=-1)


def test_exact_threshold_boundary():
    g = IncompressibleGuard(ratio_threshold=0.95)
    # compressed == 0.95 * original: not strictly below the required
    # saving, so it trips (>= comparison).
    assert g.check_packet(1000, 950)
    g2 = IncompressibleGuard(ratio_threshold=0.95)
    assert not g2.check_packet(1000, 949)
