"""The seven-function API: POSIX semantics, descriptors, partial reads."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ADOC_MIN_LEVEL,
    AdocConfig,
    AdocSocket,
    adoc_attach,
    adoc_close,
    adoc_detach,
    adoc_read,
    adoc_receive_file,
    adoc_send_file,
    adoc_send_file_levels,
    adoc_write,
    adoc_write_levels,
)
from repro.data import ascii_data
from repro.transport import pipe_pair, socketpair_endpoints

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
    # These tests document the paper's original two-thread pipeline:
    # with an in-process pipe the consumer is effectively infinitely
    # fast, and the queue buildup that makes the Figure-2 ladder climb
    # here comes from the inline thread's tight produce loop.  The
    # pooled dispatcher (the default) is exercised separately in
    # test_pooled_compression.py with controlled-speed endpoints.
    compress_workers=0,
)


@pytest.fixture
def conn(background):
    """Two attached descriptors over a pipe pair."""
    a, b = pipe_pair()
    fd_a = adoc_attach(a, CFG)
    fd_b = adoc_attach(b, CFG)
    yield fd_a, fd_b
    for fd in (fd_a, fd_b):
        try:
            adoc_close(fd)
        except ValueError:
            pass


class TestWriteRead:
    def test_write_returns_nbytes_and_slen(self, conn, background):
        fd_a, fd_b = conn
        data = ascii_data(50_000, seed=1)
        bg = background(adoc_write, fd_a, data)
        out = bytearray()
        while len(out) < len(data):
            chunk = adoc_read(fd_b, len(data) - len(out))
            assert chunk
            out += chunk
        nbytes, slen = bg.join()
        assert nbytes == len(data)
        assert slen < nbytes  # compression engaged
        assert bytes(out) == data

    def test_partial_reads_reassemble(self, conn, background):
        """The paper's example: send 100 (k)B, read 60 then 40."""
        fd_a, fd_b = conn
        data = ascii_data(100_000, seed=2)
        bg = background(adoc_write, fd_a, data)
        part1 = bytearray()
        while len(part1) < 60_000:
            part1 += adoc_read(fd_b, 60_000 - len(part1))
        part2 = bytearray()
        while len(part2) < 40_000:
            part2 += adoc_read(fd_b, 40_000 - len(part2))
        bg.join()
        assert bytes(part1 + part2) == data

    def test_reads_span_message_boundaries(self, conn, background):
        fd_a, fd_b = conn
        bg1 = background(adoc_write, fd_a, b"first-")
        bg2 = None
        out = bytearray()
        while len(out) < 6:
            out += adoc_read(fd_b, 6 - len(out))
        bg1.join()
        bg2 = background(adoc_write, fd_a, b"second")
        while len(out) < 12:
            out += adoc_read(fd_b, 12 - len(out))
        bg2.join()
        assert bytes(out) == b"first-second"

    def test_memoryview_and_bytearray_accepted(self, conn, background):
        fd_a, fd_b = conn
        data = bytearray(b"mutable payload")
        bg = background(adoc_write, fd_a, memoryview(data))
        got = bytearray()
        while len(got) < len(data):
            got += adoc_read(fd_b, len(data) - len(got))
        bg.join()
        assert got == data

    def test_read_zero_or_negative_returns_empty(self, conn):
        _, fd_b = conn
        assert adoc_read(fd_b, 0) == b""


class TestLevels:
    def test_write_levels_disable(self, conn, background):
        fd_a, fd_b = conn
        data = ascii_data(50_000, seed=3)
        bg = background(adoc_write_levels, fd_a, data, ADOC_MIN_LEVEL, ADOC_MIN_LEVEL)
        out = bytearray()
        while len(out) < len(data):
            out += adoc_read(fd_b, len(data) - len(out))
        nbytes, slen = bg.join()
        assert bytes(out) == data
        assert slen >= nbytes  # raw + framing

    def test_write_levels_force(self, conn, background):
        fd_a, fd_b = conn
        data = b"z" * 4000  # small, but forced
        bg = background(adoc_write_levels, fd_a, data, 1, 10)
        out = bytearray()
        while len(out) < len(data):
            out += adoc_read(fd_b, len(data) - len(out))
        nbytes, slen = bg.join()
        assert bytes(out) == data
        assert slen < nbytes

    def test_invalid_levels_rejected(self, conn):
        fd_a, _ = conn
        with pytest.raises(ValueError):
            adoc_write_levels(fd_a, b"x", 5, 3)


class TestFiles:
    def test_send_receive_file(self, conn, background):
        fd_a, fd_b = conn
        data = ascii_data(80_000, seed=4)
        bg = background(adoc_send_file, fd_a, io.BytesIO(data))
        sink = io.BytesIO()
        stored = adoc_receive_file(fd_b, sink)
        size, slen = bg.join()
        assert size == len(data)
        assert stored == len(data)
        assert sink.getvalue() == data
        assert size / slen > 1.1  # the paper's ratio definition

    def test_send_file_levels_disable(self, conn, background):
        fd_a, fd_b = conn
        data = ascii_data(30_000, seed=5)
        bg = background(
            adoc_send_file_levels, fd_a, io.BytesIO(data), ADOC_MIN_LEVEL, ADOC_MIN_LEVEL
        )
        sink = io.BytesIO()
        stored = adoc_receive_file(fd_b, sink)
        size, slen = bg.join()
        assert stored == len(data) and sink.getvalue() == data
        assert slen >= size

    def test_two_files_back_to_back(self, conn, background):
        fd_a, fd_b = conn
        f1 = ascii_data(30_000, seed=6)
        f2 = ascii_data(20_000, seed=7)
        bg1 = background(adoc_send_file, fd_a, io.BytesIO(f1))
        s1 = io.BytesIO()
        assert adoc_receive_file(fd_b, s1) == len(f1)
        bg1.join()
        bg2 = background(adoc_send_file, fd_a, io.BytesIO(f2))
        s2 = io.BytesIO()
        assert adoc_receive_file(fd_b, s2) == len(f2)
        bg2.join()
        assert s1.getvalue() == f1 and s2.getvalue() == f2


class TestDescriptors:
    def test_unknown_descriptor_raises(self):
        with pytest.raises(ValueError):
            adoc_write(999_999_999, b"x")
        with pytest.raises(ValueError):
            adoc_read(999_999_999, 1)
        with pytest.raises(ValueError):
            adoc_close(999_999_999)

    def test_close_frees_descriptor(self):
        a, b = pipe_pair()
        fd = adoc_attach(a, CFG)
        assert adoc_close(fd) == 0
        with pytest.raises(ValueError):
            adoc_close(fd)
        b.close()

    def test_detach_returns_endpoint_unclosed(self):
        a, b = pipe_pair()
        fd = adoc_attach(a, CFG)
        ep = adoc_detach(fd)
        assert ep is a
        # Endpoint still usable raw.
        ep.send(b"raw")
        assert b.recv(3) == b"raw"
        a.close()
        b.close()

    def test_attach_accepts_raw_socket(self, background):
        import socket as socketlib

        s1, s2 = socketlib.socketpair()
        fd_a = adoc_attach(s1, CFG)
        fd_b = adoc_attach(s2, CFG)
        bg = background(adoc_write, fd_a, b"over a real socket")
        out = bytearray()
        while len(out) < 18:
            out += adoc_read(fd_b, 18 - len(out))
        bg.join()
        assert bytes(out) == b"over a real socket"
        adoc_close(fd_a)
        adoc_close(fd_b)


class TestAdocSocketWrapper:
    def test_context_manager_roundtrip(self, background):
        a, b = pipe_pair()
        with AdocSocket(a, CFG) as tx, AdocSocket(b, CFG) as rx:
            bg = background(tx.write, b"wrapped")
            assert rx.read_exact(7) == b"wrapped"
            bg.join()

    def test_read_exact_stops_at_eof(self, background):
        a, b = pipe_pair()
        tx, rx = AdocSocket(a, CFG), AdocSocket(b, CFG)
        bg = background(tx.write, b"short")
        bg.join()
        a.close()  # EOF after one message
        assert rx.read_exact(100) == b"short"
        rx.close()


@settings(max_examples=20, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=30_000),
    chunks=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=8),
)
def test_any_read_chunking_reassembles_stream(data, chunks):
    """Property: POSIX read semantics — arbitrary read sizes recombine
    the byte stream exactly, independent of write-side framing."""
    import threading

    a, b = pipe_pair()
    tx, rx = AdocSocket(a, CFG), AdocSocket(b, CFG)
    err = []

    def send():
        try:
            tx.write(data)
        except BaseException as exc:  # noqa: BLE001
            err.append(exc)

    t = threading.Thread(target=send, daemon=True)
    t.start()
    out = bytearray()
    i = 0
    while len(out) < len(data):
        want = min(chunks[i % len(chunks)], len(data) - len(out))
        chunk = rx.read(want)
        assert chunk, "premature EOF"
        assert len(chunk) <= want
        out += chunk
        i += 1
    t.join(timeout=30)
    assert not err
    assert bytes(out) == data
    tx.close()
    rx.close()
