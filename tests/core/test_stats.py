"""Per-connection statistics aggregation."""

from __future__ import annotations

import threading

from repro.core import AdocConfig, AdocSocket, ConnectionStats, SendResult
from repro.data import ascii_data
from repro.transport import pipe_pair

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
)


class TestAccumulator:
    def test_empty_snapshot(self):
        s = ConnectionStats().snapshot()
        assert s.messages == 0
        assert s.compression_ratio == 1.0
        assert s.mean_level == 0.0

    def test_fold_results(self):
        stats = ConnectionStats()
        stats.record_send(
            SendResult(1000, 400, 0.1, pipeline_used=True, levels_used={2: 3, 4: 1})
        )
        stats.record_send(SendResult(100, 120, 0.01))
        s = stats.snapshot()
        assert s.messages == 2
        assert s.payload_bytes == 1100
        assert s.wire_bytes == 520
        assert s.pipeline_path == 1
        assert s.small_path == 1
        assert s.levels_used == {2: 3, 4: 1}
        assert abs(s.mean_level - 2.5) < 1e-9

    def test_snapshot_is_a_copy(self):
        stats = ConnectionStats()
        stats.record_send(SendResult(10, 10, 0.0, levels_used={1: 1}))
        snap = stats.snapshot()
        snap.levels_used[1] = 999
        assert stats.snapshot().levels_used[1] == 1

    def test_thread_safety(self):
        stats = ConnectionStats()

        def fold():
            for _ in range(200):
                stats.record_send(SendResult(10, 5, 0.0, levels_used={3: 1}))

        threads = [threading.Thread(target=fold) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        s = stats.snapshot()
        assert s.messages == 800
        assert s.levels_used[3] == 800

    def test_summary_line(self):
        stats = ConnectionStats()
        stats.record_send(SendResult(1000, 500, 0.1, pipeline_used=True))
        text = stats.summary()
        assert "ratio 2.00" in text
        assert "pipe=1" in text


class TestLiveIntegration:
    def test_socket_stats_after_writes(self, background):
        a, b = pipe_pair()
        tx, rx = AdocSocket(a, CFG), AdocSocket(b, CFG)

        data = ascii_data(60_000, seed=1)
        bg = background(tx.write, data)
        rx.read_exact(len(data))
        bg.join()
        bg = background(tx.write, b"tiny")
        rx.read_exact(4)
        bg.join()

        s = tx.stats.snapshot()
        assert s.messages == 2
        assert s.pipeline_path == 1
        assert s.small_path == 1
        assert s.payload_bytes == len(data) + 4
        assert s.compression_ratio > 1.0
        tx.close()
        rx.close()
