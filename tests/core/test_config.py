"""AdocConfig: paper defaults and validation."""

from __future__ import annotations

import pytest

from repro.core import AdocConfig, DEFAULT_CONFIG

KB = 1024


def test_paper_constants():
    cfg = DEFAULT_CONFIG
    assert cfg.buffer_size == 200 * KB
    assert cfg.packet_size == 8 * KB
    assert cfg.queue_low == 10
    assert cfg.queue_mid == 20
    assert cfg.queue_high == 30
    assert cfg.small_message_threshold == 512 * KB
    assert cfg.probe_size == 256 * KB
    assert cfg.fast_network_bps == 500e6
    assert cfg.divergence_forbid_s == 1.0
    assert cfg.incompressible_holdoff == 10
    assert cfg.min_level == 0
    assert cfg.max_level == 10


def test_no_compression_below_80kb_consequence():
    """Paper section 3.3: 10-packet floor x 8 KB packets = 80 KB."""
    cfg = DEFAULT_CONFIG
    assert cfg.queue_low * cfg.packet_size == 80 * KB


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(buffer_size=0),
        dict(packet_size=0),
        dict(packet_size=300 * KB),  # larger than buffer
        dict(min_level=5, max_level=3),
        dict(max_level=11),
        dict(queue_low=0),
        dict(queue_low=25, queue_mid=20),
        dict(queue_capacity=10),  # below queue_high
        dict(probe_size=1024 * KB),  # above small-message threshold
        dict(incompressible_ratio=0.0),
        dict(incompressible_ratio=1.5),
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        AdocConfig(**kwargs)


def test_with_levels_narrowing():
    cfg = DEFAULT_CONFIG.with_levels(1, 5)
    assert cfg.min_level == 1 and cfg.max_level == 5
    assert cfg.compression_forced
    assert not cfg.compression_disabled
    # Original untouched (frozen dataclass).
    assert DEFAULT_CONFIG.min_level == 0


def test_with_levels_disable():
    cfg = DEFAULT_CONFIG.with_levels(0, 0)
    assert cfg.compression_disabled
    assert not cfg.compression_forced


def test_with_levels_validation():
    with pytest.raises(ValueError):
        DEFAULT_CONFIG.with_levels(5, 3)
    with pytest.raises(ValueError):
        DEFAULT_CONFIG.with_levels(0, 11)


def test_frozen():
    with pytest.raises(Exception):
        DEFAULT_CONFIG.buffer_size = 1  # type: ignore[misc]
