"""Unit formatting and parsing helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import format_bytes, format_rate, parse_size


class TestFormatBytes:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1024, "1.0 KB"),
            (1536, "1.5 KB"),
            (1024**2, "1.0 MB"),
            (32 * 1024**2, "32.0 MB"),
            (3 * 1024**3, "3.0 GB"),
        ],
    )
    def test_values(self, n, expected):
        assert format_bytes(n) == expected

    def test_negative(self):
        assert format_bytes(-2048) == "-2.0 KB"


class TestFormatRate:
    @pytest.mark.parametrize(
        "bps,expected",
        [
            (500, "500.00 bit/s"),
            (94_000_000, "94.00 Mbit/s"),
            (1_000_000_000, "1.00 Gbit/s"),
        ],
    )
    def test_values(self, bps, expected):
        assert format_rate(bps) == expected


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("100", 100),
            ("100B", 100),
            ("1KB", 1024),
            ("1 kb", 1024),
            ("1KiB", 1024),
            ("32MB", 32 * 1024**2),
            ("2.5MB", int(2.5 * 1024**2)),
            ("1G", 1024**3),
        ],
    )
    def test_values(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "MB", "abc", "-5MB"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=10 * 1024**3))
def test_parse_format_roundtrip_order_of_magnitude(n):
    """parse(format(n)) stays within the formatting precision (~5%)."""
    back = parse_size(format_bytes(n))
    assert abs(back - n) <= max(0.06 * n, 1)
