"""Measurement statistics helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import percentile, summarize


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        xs = [5.0, 1.0, 9.0]
        assert percentile(xs, 0) == 1.0
        assert percentile(xs, 100) == 9.0

    def test_single_sample(self):
        assert percentile([7.0], 95) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSummary:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.best == 1.0
        assert s.worst == 4.0
        assert s.mean == 2.5
        assert s.median == 2.5

    def test_cv_zero_mean(self):
        assert summarize([0.0, 0.0]).cv == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=50))
def test_summary_invariants(xs):
    s = summarize(xs)
    eps = 1e-9 * max(abs(s.worst), 1.0)  # interpolation/mean ulp slack
    assert s.best - eps <= s.median <= s.worst + eps
    assert s.best - eps <= s.mean <= s.worst + eps
    assert s.best - eps <= s.p95 <= s.worst + eps
    assert s.stdev >= 0
