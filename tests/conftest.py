"""Shared fixtures for the AdOC reproduction test suite."""

from __future__ import annotations

import os
import threading

import pytest

from repro.transport import pipe_pair


def pytest_sessionfinish(session, exitstatus):
    """Under ``REPRO_LOCKCHECK=1``, fail the run on lock-order cycles.

    The whole suite doubles as a lock-ordering workload: every checked
    lock acquisition recorded an edge in the global lock graph, and a
    cycle there is a potential deadlock even though no run hung.
    """
    from repro.analysis.lockgraph import GLOBAL_GRAPH, enabled

    if not enabled():
        return
    export_path = os.environ.get("REPRO_LOCKCHECK_EXPORT")
    if export_path:
        # Interchange with the static analyzer: `adoc check --lockgraph`
        # reads this to flag statically-possible orderings the suite
        # never exercised (ADOC114).
        import json

        with open(export_path, "w", encoding="utf-8") as fh:
            json.dump(GLOBAL_GRAPH.to_json(), fh, indent=2)
            fh.write("\n")
    report = GLOBAL_GRAPH.report()
    cycles = GLOBAL_GRAPH.find_cycles()
    tr = session.config.pluginmanager.get_plugin("terminalreporter")
    write = tr._tw.line if tr is not None else print
    write("")
    for line in report.splitlines():
        write(line)
    if cycles:
        write("REPRO_LOCKCHECK: lock-order cycles detected — failing the run")
        session.exitstatus = 3


@pytest.fixture
def no_thread_leaks():
    """Assert the test left no live worker threads behind.

    Snapshots ``threading.enumerate()`` on entry and, after the test,
    gives late joiners a short grace period before asserting that every
    thread started during the test has exited.  Used (autouse) across
    ``tests/faults``: the fault-tolerance contract is that *failed*
    transfers tear their pipelines down, not just successful ones.

    The process-wide shared codec pool (``adoc-shared-codec-*``) is
    exempt by design: its workers deliberately outlive individual
    transfers (that is the point of sharing them), and their reaping is
    covered by the ``shutdown_shared_pool`` tests in
    ``tests/core/test_pooled_compression.py``.
    """
    import time as _time

    from repro.serve.pool import SHARED_POOL_NAME

    shared_prefix = f"adoc-{SHARED_POOL_NAME}-"
    before = set(threading.enumerate())
    yield
    deadline = _time.monotonic() + 5.0
    while _time.monotonic() < deadline:
        leaked = [
            t
            for t in threading.enumerate()
            if t not in before
            and t.is_alive()
            and not t.name.startswith(shared_prefix)
        ]
        if not leaked:
            return
        _time.sleep(0.05)
    assert not leaked, f"test leaked live threads: {[t.name for t in leaked]}"


@pytest.fixture
def pipes():
    """A connected in-memory endpoint pair, closed on teardown."""
    a, b = pipe_pair()
    yield a, b
    a.close()
    b.close()


class BackgroundSender:
    """Run a send callable on a thread and re-raise its errors on join."""

    def __init__(self, fn, *args, **kwargs):
        self.result = None
        self.error: BaseException | None = None

        def run():
            try:
                self.result = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - surfaced on join
                self.error = exc

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()

    def join(self, timeout: float = 60.0):
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "background sender timed out"
        if self.error is not None:
            raise self.error
        return self.result


@pytest.fixture
def background():
    """Factory fixture: run a callable in the background, join safely."""
    senders: list[BackgroundSender] = []

    def start(fn, *args, **kwargs) -> BackgroundSender:
        s = BackgroundSender(fn, *args, **kwargs)
        senders.append(s)
        return s

    yield start
    for s in senders:
        s.thread.join(timeout=5)
