"""Striped data channels fed from a file: O(chunk) memory per channel."""

from __future__ import annotations

import io
import threading

import pytest

from repro.core import AdocConfig
from repro.data import ascii_data
from repro.gridftp.transfer import receive_data, send_data
from repro.transport import pipe_pair

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
)


def file_roundtrip(payload: bytes, mode: str, n_channels: int) -> bytes:
    pairs = [pipe_pair() for _ in range(n_channels)]
    tx = [p[0] for p in pairs]
    rx = [p[1] for p in pairs]
    stream = io.BytesIO(payload)

    sender = threading.Thread(
        target=send_data,
        args=(tx, stream, mode, 32 * 1024, CFG),
        daemon=True,
    )
    sender.start()
    got = receive_data(rx, len(payload), mode, 32 * 1024, CFG)
    sender.join(timeout=60)
    assert not sender.is_alive(), "send_data hung"
    return got


@pytest.mark.parametrize("mode", ["PLAIN", "ADOC"])
@pytest.mark.parametrize("n_channels", [1, 3])
def test_file_payload_roundtrip(mode, n_channels):
    payload = ascii_data(300_000, seed=21)
    assert file_roundtrip(payload, mode, n_channels) == payload


def test_bytes_and_file_agree():
    payload = ascii_data(120_000, seed=22)
    assert file_roundtrip(payload, "PLAIN", 2) == payload
    # bytes-like payloads still work unchanged through the same entry
    pairs = [pipe_pair() for _ in range(2)]
    sender = threading.Thread(
        target=send_data,
        args=([p[0] for p in pairs], memoryview(payload), "PLAIN", 32 * 1024, CFG),
        daemon=True,
    )
    sender.start()
    got = receive_data([p[1] for p in pairs], len(payload), "PLAIN", 32 * 1024, CFG)
    sender.join(timeout=60)
    assert got == payload
