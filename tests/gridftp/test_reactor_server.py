"""ReactorFileServer: the gridftp control plane on the reactor core."""

from __future__ import annotations

import threading

import pytest

from repro.core import AdocConfig
from repro.data import ascii_data
from repro.gridftp.client import FileClient
from repro.gridftp.server import ReactorFileServer
from repro.transport import socketpair_endpoints

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    io_timeout_s=None,
)


@pytest.fixture
def server(no_thread_leaks):
    srv = ReactorFileServer(socketpair_endpoints, config=CFG, workers=2)
    yield srv
    srv.close()


def test_store_and_retrieve_plain(server):
    client = FileClient(server, config=CFG)
    payload = ascii_data(200 * 1024, seed=1)
    client.store("data.txt", payload)
    assert client.retrieve("data.txt") == payload
    assert server.files["data.txt"] == payload
    client.quit()


def test_store_and_retrieve_adoc_striped(server):
    client = FileClient(server, config=CFG)
    client.set_mode("ADOC")
    client.set_stripes(2)
    payload = ascii_data(400 * 1024, seed=2)
    client.store("big.txt", payload)
    assert client.retrieve("big.txt") == payload
    client.quit()


def test_listing_and_size(server):
    client = FileClient(server, config=CFG)
    client.store("a.bin", b"x" * 100)
    client.store("b.bin", b"y" * 200)
    listing = client.list_files()
    assert listing == {"a.bin": 100, "b.bin": 200}
    client.quit()


def test_concurrent_sessions_share_one_loop(server):
    clients = [FileClient(server, config=CFG) for _ in range(4)]
    payloads = [ascii_data(50 * 1024, seed=i) for i in range(4)]
    threads = [
        threading.Thread(
            target=client.store,
            args=(f"f{i}.bin", payloads[i]),
            name=f"store-{i}",
        )
        for i, client in enumerate(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30.0)
        assert not t.is_alive()
    for i, client in enumerate(clients):
        assert client.retrieve(f"f{i}.bin") == payloads[i]
        client.quit()
    assert server.transfers == 8


def test_mode_state_is_per_session(server):
    adoc_client = FileClient(server, config=CFG)
    plain_client = FileClient(server, config=CFG)
    adoc_client.set_mode("ADOC")
    payload = ascii_data(60 * 1024, seed=7)
    adoc_client.store("adoc.bin", payload)
    assert plain_client.retrieve("adoc.bin") == payload  # plain session
    adoc_client.quit()
    plain_client.quit()


def test_unknown_command_gets_502(server):
    from repro.gridftp.client import GridFtpError

    client = FileClient(server, config=CFG)
    with pytest.raises(GridFtpError, match="502"):
        client._command("NOPE")
    # The session survives the refusal.
    assert client.list_files() == {}
    client.quit()


def test_tcp_listen_serves_the_same_protocol(no_thread_leaks):
    import socket

    srv = ReactorFileServer(socketpair_endpoints, config=CFG, workers=2)
    try:
        address = srv.listen("127.0.0.1", 0)
        with socket.create_connection(address, timeout=10.0) as sock:
            fh = sock.makefile("rb")
            assert fh.readline().startswith(b"220")
            sock.sendall(b"LIST\r\n")
            assert fh.readline().startswith(b"200")
            sock.sendall(b"QUIT\r\n")
            assert fh.readline().startswith(b"221")
    finally:
        srv.close()
