"""gridFTP-lite control protocol parsing."""

from __future__ import annotations

import pytest

from repro.gridftp.protocol import (
    ProtocolViolation,
    format_reply,
    parse_command,
    parse_reply,
    read_line,
)
from repro.transport import pipe_pair


class TestCommands:
    def test_parse_verb_and_args(self):
        assert parse_command("STOR data.bin 1024") == ("STOR", ["data.bin", "1024"])

    def test_verb_case_insensitive(self):
        assert parse_command("mode adoc")[0] == "MODE"

    def test_empty_rejected(self):
        with pytest.raises(ProtocolViolation):
            parse_command("   ")


class TestReplies:
    def test_roundtrip(self):
        r = parse_reply(format_reply(226, "stored x (10 bytes)"))
        assert r.code == 226
        assert r.text == "stored x (10 bytes)"
        assert r.ok

    def test_error_codes_not_ok(self):
        assert not parse_reply(format_reply(550, "no such file")).ok

    def test_invalid_code_rejected(self):
        with pytest.raises(ValueError):
            format_reply(99, "x")

    def test_multiline_text_rejected(self):
        with pytest.raises(ValueError):
            format_reply(200, "two\nlines")

    def test_malformed_reply_rejected(self):
        with pytest.raises(ProtocolViolation):
            parse_reply(b"not a reply\r\n")


class TestReadLine:
    def test_reads_one_line(self):
        a, b = pipe_pair()
        a.send(b"STOR x 10\r\nextra")
        assert read_line(b) == b"STOR x 10\r\n"
        a.close()
        b.close()

    def test_eof_returns_partial(self):
        a, b = pipe_pair()
        a.send(b"QUI")
        a.close()
        assert read_line(b) == b"QUI"
        b.close()

    def test_oversized_line_rejected(self):
        a, b = pipe_pair()
        a.send(b"x" * 5000)
        with pytest.raises(ProtocolViolation):
            read_line(b, max_len=100)
        a.close()
        b.close()
