"""gridFTP-lite end to end: STOR/RETR, modes, striping, errors."""

from __future__ import annotations

import pytest

from repro.core import AdocConfig
from repro.data import ascii_data, incompressible_data, synthetic_tar_bytes
from repro.gridftp import FileClient, FileServer, GridFtpError
from repro.transport import pipe_pair

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
)


@pytest.fixture
def server():
    return FileServer(pipe_pair, config=CFG, chunk_size=96 * 1024)


@pytest.fixture
def client(server):
    c = FileClient(server, config=CFG)
    yield c
    try:
        c.quit()
    except GridFtpError:
        pass


class TestSession:
    def test_greeting_and_quit(self, server):
        c = FileClient(server, config=CFG)
        c.quit()

    def test_mode_selection(self, client):
        client.set_mode("ADOC")
        assert client.mode == "ADOC"
        client.set_mode("PLAIN")
        assert client.mode == "PLAIN"

    def test_invalid_mode_rejected(self, client):
        with pytest.raises(GridFtpError):
            client._command("MODE TURBO")

    def test_invalid_stripes_rejected(self, client):
        with pytest.raises(GridFtpError):
            client._command("STRIPES 99")

    def test_unknown_command(self, client):
        with pytest.raises(GridFtpError):
            client._command("FROB x")


class TestTransfers:
    @pytest.mark.parametrize("mode", ["PLAIN", "ADOC"])
    @pytest.mark.parametrize("stripes", [1, 3])
    def test_store_retrieve_roundtrip(self, client, mode, stripes):
        client.set_mode(mode)
        client.set_stripes(stripes)
        data = ascii_data(150_000, seed=1)
        report = client.store("a.txt", data)
        assert report.payload_bytes == len(data)
        assert report.stripes == stripes
        assert client.retrieve("a.txt") == data

    def test_adoc_mode_compresses_upload(self, client):
        client.set_mode("ADOC")
        data = ascii_data(200_000, seed=2)
        report = client.store("big.txt", data)
        assert report.compression_ratio > 1.1

    def test_plain_mode_wire_equals_payload(self, client):
        data = ascii_data(100_000, seed=3)
        report = client.store("raw.txt", data)
        assert report.wire_bytes == len(data)
        assert report.compression_ratio == pytest.approx(1.0)

    def test_incompressible_upload_adoc(self, client):
        client.set_mode("ADOC")
        data = incompressible_data(120_000, seed=4)
        report = client.store("rnd.bin", data)
        assert client.retrieve("rnd.bin") == data
        assert report.wire_bytes <= len(data) * 1.03 + 2048

    def test_real_tarball(self, client):
        client.set_mode("ADOC")
        client.set_stripes(2)
        tar = synthetic_tar_bytes(n_members=2, member_size=80_000, seed=5)
        client.store("bin.tar", tar)
        assert client.retrieve("bin.tar") == tar

    def test_empty_file(self, client):
        client.store("empty", b"")
        assert client.retrieve("empty") == b""

    def test_mode_switch_between_transfers(self, client):
        d1 = ascii_data(60_000, seed=6)
        client.store("p.txt", d1)
        client.set_mode("ADOC")
        d2 = ascii_data(60_000, seed=7)
        client.store("q.txt", d2)
        assert client.retrieve("q.txt") == d2
        client.set_mode("PLAIN")
        assert client.retrieve("p.txt") == d1


class TestCatalog:
    def test_list_and_size(self, client):
        assert client.list_files() == {}
        client.store("one.bin", b"12345")
        client.store("two.bin", b"123")
        assert client.list_files() == {"one.bin": 5, "two.bin": 3}
        assert client.size("one.bin") == 5

    def test_missing_file_errors(self, client):
        with pytest.raises(GridFtpError):
            client.retrieve("ghost")
        with pytest.raises(GridFtpError):
            client.size("ghost")


class TestConcurrentSessions:
    def test_two_clients_one_server(self, server):
        c1 = FileClient(server, config=CFG)
        c2 = FileClient(server, config=CFG)
        c1.set_mode("ADOC")
        d1 = ascii_data(90_000, seed=8)
        d2 = ascii_data(70_000, seed=9)
        c1.store("c1.txt", d1)
        c2.store("c2.txt", d2)
        assert c2.retrieve("c1.txt") == d1
        assert c1.retrieve("c2.txt") == d2
        c1.quit()
        c2.quit()


def test_broker_tokens_single_use(server):
    client = FileClient(server, config=CFG)
    data = b"x" * 50_000
    reply = client._command(f"STOR f {len(data)}")
    tokens = reply.text.split()
    ep = server.broker.redeem(tokens[0])
    with pytest.raises(KeyError):
        server.broker.redeem(tokens[0])
    # Clean up: complete the transfer so the server thread exits.
    from repro.gridftp.transfer import send_data

    send_data([ep], data, "PLAIN", server.chunk_size, CFG)
    client._read_reply()
    client.quit()
