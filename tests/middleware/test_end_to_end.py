"""Agent + server + client end to end, plain and AdOC communicators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdocConfig
from repro.data import dense_matrix, sparse_matrix
from repro.middleware import (
    AdocCommunicator,
    Agent,
    Client,
    PlainCommunicator,
    RpcError,
    Server,
)
from repro.transport import pipe_pair

#: AdOC config that exercises the pipeline even on tiny test matrices.
SMALL_CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
)


def adoc_comm(endpoint):
    return AdocCommunicator(endpoint, SMALL_CFG)


@pytest.fixture(params=["plain", "adoc"])
def stack(request):
    comm = PlainCommunicator if request.param == "plain" else adoc_comm
    agent = Agent()
    server = Server("s1", communicator_factory=comm)
    agent.register(server, pipe_pair)
    return Client(agent, communicator_factory=comm), agent, server


class TestRpc:
    def test_dgemm_dense(self, stack):
        client, _, _ = stack
        a, b = dense_matrix(20, seed=1), dense_matrix(20, seed=2)
        c = client.call("dgemm", a, b)
        np.testing.assert_allclose(c, a @ b, rtol=1e-9)

    def test_dgemm_sparse(self, stack):
        client, _, _ = stack
        s = sparse_matrix(32)
        assert not client.call("dgemm", s, s).any()

    def test_sequential_requests(self, stack):
        client, _, server = stack
        for i in range(3):
            m = dense_matrix(10, seed=i)
            np.testing.assert_allclose(client.call("transpose", m), m.T)
        assert server.stats.requests == 3
        assert server.stats.errors == 0

    def test_remote_error_propagates(self, stack):
        client, _, server = stack
        with pytest.raises(RpcError, match="dgemm"):
            client.call("dgemm", dense_matrix(4, seed=1))  # wrong arity
        assert server.stats.errors == 1

    def test_unknown_service_raises_lookup(self, stack):
        client, _, _ = stack
        with pytest.raises(LookupError):
            client.call("fft", dense_matrix(4, seed=1))

    def test_call_timed_accounting(self, stack):
        client, _, _ = stack
        m = dense_matrix(16, seed=3)
        result, info = client.call_timed("norm", m)
        assert info.elapsed_s > 0
        assert info.request_payload_bytes > 0
        assert result.shape == (1, 1)


class TestAgent:
    def test_least_busy_round_robin(self):
        agent = Agent()
        s1 = Server("s1")
        s2 = Server("s2")
        agent.register(s1, pipe_pair)
        agent.register(s2, pipe_pair)
        client = Client(agent)
        for i in range(4):
            client.call("norm", dense_matrix(6, seed=i))
        # Round robin: both served some requests.
        assert s1.stats.requests > 0
        assert s2.stats.requests > 0

    def test_service_filtering(self):
        from repro.middleware import ServiceRegistry

        agent = Agent()
        special = ServiceRegistry()
        special.register("only-here", lambda args: args)
        s1 = Server("plain-server")
        s2 = Server("special-server", registry=special)
        agent.register(s1, pipe_pair)
        agent.register(s2, pipe_pair)
        assert agent.servers_for("only-here") == [s2]
        assert agent.servers_for("dgemm") == [s1]

    def test_no_server_raises(self):
        with pytest.raises(LookupError):
            Agent().connect("dgemm")


class TestAdocActuallyCompresses:
    def test_request_wire_smaller_for_sparse(self):
        agent = Agent()
        server = Server("s1", communicator_factory=adoc_comm)
        agent.register(server, pipe_pair)
        client = Client(agent, communicator_factory=adoc_comm)
        s = sparse_matrix(96)  # ~184 KB ASCII: room for the level to climb
        _, info = client.call_timed("dgemm", s, s)
        assert info.compression_ratio > 1.5

    def test_plain_never_compresses(self):
        agent = Agent()
        server = Server("s1")
        agent.register(server, pipe_pair)
        client = Client(agent)
        s = sparse_matrix(48)
        _, info = client.call_timed("dgemm", s, s)
        assert info.compression_ratio <= 1.0


class TestAsyncCalls:
    def test_call_async_resolves(self, stack):
        client, _, _ = stack
        a, b = dense_matrix(16, seed=8), dense_matrix(16, seed=9)
        future = client.call_async("dgemm", a, b)
        np.testing.assert_allclose(future.result(timeout=30), a @ b, rtol=1e-9)

    def test_parallel_requests_fan_out(self):
        agent = Agent()
        s1, s2 = Server("s1"), Server("s2")
        agent.register(s1, pipe_pair)
        agent.register(s2, pipe_pair)
        client = Client(agent)
        mats = [dense_matrix(12, seed=i) for i in range(4)]
        futures = [client.call_async("transpose", m) for m in mats]
        for m, f in zip(mats, futures):
            np.testing.assert_allclose(f.result(timeout=30), m.T)
        assert s1.stats.requests + s2.stats.requests == 4
        assert s1.stats.requests > 0 and s2.stats.requests > 0

    def test_async_error_via_future(self, stack):
        client, _, _ = stack
        future = client.call_async("dgemm", dense_matrix(4, seed=1))  # bad arity
        with pytest.raises(RpcError):
            future.result(timeout=30)
