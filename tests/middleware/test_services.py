"""Built-in services and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import decode_matrix_ascii, encode_matrix_ascii
from repro.middleware import ServiceRegistry, default_registry


@pytest.fixture
def reg():
    return default_registry()


def call(reg, name, *mats):
    out = reg.lookup(name)([encode_matrix_ascii(m) for m in mats])
    return [decode_matrix_ascii(r) for r in out]


class TestDgemm:
    def test_multiplies(self, reg):
        rng = np.random.default_rng(1)
        a, b = rng.random((8, 8)), rng.random((8, 8))
        (c,) = call(reg, "dgemm", a, b)
        np.testing.assert_allclose(c, a @ b, rtol=1e-10)

    def test_rectangular(self, reg):
        rng = np.random.default_rng(2)
        a, b = rng.random((4, 6)), rng.random((6, 3))
        (c,) = call(reg, "dgemm", a, b)
        assert c.shape == (4, 3)

    def test_arity_checked(self, reg):
        with pytest.raises(ValueError):
            reg.lookup("dgemm")([encode_matrix_ascii(np.ones((2, 2)))])


class TestOtherServices:
    def test_dgemv(self, reg):
        rng = np.random.default_rng(3)
        a, x = rng.random((5, 5)), rng.random((5, 1))
        (y,) = call(reg, "dgemv", a, x)
        np.testing.assert_allclose(y, a @ x, rtol=1e-10)

    def test_sum(self, reg):
        ms = [np.full((3, 3), float(i)) for i in range(1, 4)]
        (s,) = call(reg, "sum", *ms)
        np.testing.assert_allclose(s, np.full((3, 3), 6.0))

    def test_transpose(self, reg):
        m = np.arange(6.0).reshape(2, 3)
        (t,) = call(reg, "transpose", m)
        np.testing.assert_allclose(t, m.T)

    def test_norm(self, reg):
        m = np.eye(4)
        (n,) = call(reg, "norm", m)
        assert n.shape == (1, 1)
        assert n[0, 0] == pytest.approx(2.0)


class TestRegistry:
    def test_default_names(self, reg):
        assert {"dgemm", "dgemv", "sum", "transpose", "norm"} <= set(reg.names())

    def test_duplicate_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.register("dgemm", lambda args: args)

    def test_unknown_lookup_raises(self, reg):
        with pytest.raises(KeyError):
            reg.lookup("fft")

    def test_contains(self, reg):
        assert "dgemm" in reg
        assert "fft" not in reg

    def test_custom_registration(self):
        reg = ServiceRegistry()
        reg.register("echo", lambda args: args)
        assert reg.lookup("echo")([b"x"]) == [b"x"]
