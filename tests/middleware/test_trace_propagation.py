"""Trace-context propagation across the RPC boundary.

The client stamps every request with a trace/span id (when telemetry is
enabled); the server adopts it while handling, so both sides' events
carry the same ``trace`` arg — the join key ``adoc trace merge`` uses
to line up one call across two processes' timelines.
"""

from __future__ import annotations

import socket

import numpy as np

from repro.middleware import Agent, Client, PlainCommunicator, Server
from repro.middleware.protocol import (
    MsgType,
    RpcMessage,
    read_message,
    write_message,
)
from repro.middleware.server import ReactorRpcServer
from repro.obs import Telemetry, set_active_telemetry
from repro.transport import SocketEndpoint, pipe_pair


def make_stack():
    agent = Agent()
    server = Server("s1", communicator_factory=PlainCommunicator)
    agent.register(server, pipe_pair)
    return Client(agent, communicator_factory=PlainCommunicator), server


class TestBlockingPath:
    def test_client_and_server_events_share_one_trace(self):
        tele = Telemetry(enabled=True)
        set_active_telemetry(tele)
        try:
            client, _ = make_stack()
            m = np.ones((8, 8))
            client.call("transpose", m)
        finally:
            set_active_telemetry(None)
        rpc = tele.tracer.events("rpc")
        sides = {e.args["side"]: e for e in rpc}
        assert set(sides) == {"client", "server"}
        trace = sides["client"].args["trace"]
        assert len(trace) == 32
        assert sides["server"].args["trace"] == trace
        # The server-side event names the client's span.
        assert sides["server"].args["span"] == sides["client"].args["span"]

    def test_distinct_calls_get_distinct_traces(self):
        tele = Telemetry(enabled=True)
        set_active_telemetry(tele)
        try:
            client, _ = make_stack()
            m = np.ones((4, 4))
            client.call("transpose", m)
            client.call("transpose", m)
        finally:
            set_active_telemetry(None)
        traces = {
            e.args["trace"]
            for e in tele.tracer.events("rpc")
            if e.args["side"] == "client"
        }
        assert len(traces) == 2

    def test_caller_context_is_restored_after_call(self):
        tele = Telemetry(enabled=True)
        set_active_telemetry(tele)
        try:
            tele.tracer.set_trace("f" * 32)
            client, _ = make_stack()
            client.call("transpose", np.ones((4, 4)))
            assert tele.tracer.current_trace() == "f" * 32
            # An existing context is propagated, not replaced.
            client_events = [
                e
                for e in tele.tracer.events("rpc")
                if e.args["side"] == "client"
            ]
            assert all(e.args["trace"] == "f" * 32 for e in client_events)
        finally:
            set_active_telemetry(None)

    def test_disabled_telemetry_keeps_legacy_wire(self):
        """With telemetry off the client must not attach trace context —
        the request goes out under the byte-identical legacy header."""
        set_active_telemetry(None)
        seen: list[RpcMessage] = []

        class Spy(Server):
            def _handle(self, comm, msg):
                seen.append(msg)
                super()._handle(comm, msg)

        agent = Agent()
        agent.register(Spy("spy"), pipe_pair)
        client = Client(agent)
        client.call("transpose", np.ones((4, 4)))
        (msg,) = seen
        assert msg.trace_id is None and msg.span_id is None


class TestReactorPath:
    def test_reply_echoes_trace_and_server_adopts_it(self):
        tele = Telemetry(enabled=True)
        server = ReactorRpcServer(
            "traced", mode="plain", dispatch="pool", telemetry=tele
        )
        address = server.listen()
        trace = "ab" * 16
        span = "cd" * 8
        try:
            sock = socket.create_connection(address, timeout=30.0)
            comm = PlainCommunicator(SocketEndpoint(sock))
            try:
                write_message(
                    comm,
                    RpcMessage(
                        MsgType.REQUEST, "echo", [b"ping"],
                        trace_id=trace, span_id=span,
                    ),
                )
                reply = read_message(comm)
            finally:
                comm.close()
            assert reply is not None
            assert reply.type == MsgType.RESPONSE
            assert reply.trace_id == trace
            assert reply.span_id == span
            server_rpc = [
                e
                for e in tele.tracer.events("rpc")
                if e.args.get("side") == "server"
            ]
            assert server_rpc, "server never recorded the adopted trace"
            assert server_rpc[0].args["trace"] == trace
            assert server_rpc[0].args["span"] == span
        finally:
            server.close()

    def test_error_reply_echoes_trace(self):
        server = ReactorRpcServer("traced-err", mode="plain", dispatch="pool")
        address = server.listen()
        trace = "11" * 16
        try:
            sock = socket.create_connection(address, timeout=30.0)
            comm = PlainCommunicator(SocketEndpoint(sock))
            try:
                write_message(
                    comm,
                    RpcMessage(
                        MsgType.REQUEST, "no-such-service", [], trace_id=trace
                    ),
                )
                reply = read_message(comm)
            finally:
                comm.close()
            assert reply is not None
            assert reply.type == MsgType.ERROR
            assert reply.trace_id == trace
        finally:
            server.close()
