"""RPC message framing over communicators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.middleware import (
    MsgType,
    PlainCommunicator,
    RpcError,
    RpcMessage,
    read_message,
    write_message,
)
from repro.transport import pipe_pair


def roundtrip(msg: RpcMessage) -> RpcMessage:
    a, b = pipe_pair(capacity=1 << 24)
    tx, rx = PlainCommunicator(a), PlainCommunicator(b)
    write_message(tx, msg)
    got = read_message(rx)
    tx.close()
    rx.close()
    assert got is not None
    return got


class TestStreamedArgs:
    def test_file_argument_streams(self):
        import io

        payload = bytes(range(256)) * 2000  # 512 000 bytes
        msg = RpcMessage(
            MsgType.REQUEST, "ibp.store", [b"cap", io.BytesIO(payload)]
        )
        got = roundtrip(msg)
        assert got.args == [b"cap", payload]  # receiver always sees bytes

    def test_unseekable_argument_rejected(self):
        import io

        class Pipe(io.RawIOBase):
            def readable(self):
                return True

            def read(self, n=-1):
                return b""

            def seekable(self):
                return False

            def tell(self):
                raise OSError("not seekable")

        a, b = pipe_pair(capacity=1 << 20)
        tx = PlainCommunicator(a)
        with pytest.raises(RpcError, match="seekable"):
            write_message(tx, RpcMessage(MsgType.REQUEST, "svc", [Pipe()]))
        tx.close()


class TestRoundTrip:
    def test_request(self):
        got = roundtrip(RpcMessage(MsgType.REQUEST, "dgemm", [b"arg1", b"arg2"]))
        assert got.type == MsgType.REQUEST
        assert got.name == "dgemm"
        assert got.args == [b"arg1", b"arg2"]
        assert got.status == 0

    def test_response_with_status(self):
        got = roundtrip(RpcMessage(MsgType.RESPONSE, "dgemm", [b"result"], status=0))
        assert got.type == MsgType.RESPONSE

    def test_error_message(self):
        got = roundtrip(RpcMessage(MsgType.ERROR, "dgemm", [b"boom"], status=1))
        assert got.type == MsgType.ERROR
        assert got.status == 1

    def test_empty_args(self):
        assert roundtrip(RpcMessage(MsgType.REQUEST, "norm", [])).args == []

    def test_empty_arg_payload(self):
        assert roundtrip(RpcMessage(MsgType.REQUEST, "x", [b""])).args == [b""]

    def test_unicode_service_name(self):
        assert roundtrip(RpcMessage(MsgType.REQUEST, "dgémm-π", [])).name == "dgémm-π"

    def test_bytes_written_accounting(self):
        a, b = pipe_pair(capacity=1 << 20)
        tx = PlainCommunicator(a)
        n = write_message(tx, RpcMessage(MsgType.REQUEST, "svc", [b"xy"]))
        assert tx.bytes_written == n
        a.close()
        b.close()


class TestErrors:
    def test_clean_eof_returns_none(self):
        a, b = pipe_pair()
        a.close()
        assert read_message(PlainCommunicator(b)) is None

    def test_bad_magic_raises(self):
        a, b = pipe_pair()
        a.send(b"XX\x01\x00")
        a.close()
        with pytest.raises(RpcError):
            read_message(PlainCommunicator(b))

    def test_truncated_header_raises(self):
        a, b = pipe_pair()
        a.send(b"NS")  # half a header
        a.close()
        with pytest.raises(RpcError):
            read_message(PlainCommunicator(b))


@settings(max_examples=50, deadline=None)
@given(
    name=st.text(min_size=1, max_size=30),
    args=st.lists(st.binary(max_size=2000), max_size=5),
)
def test_roundtrip_property(name, args):
    got = roundtrip(RpcMessage(MsgType.REQUEST, name, args))
    assert got.name == name
    assert got.args == args


TRACE = "0123456789abcdef" * 2  # 32 hex chars / 16 bytes
SPAN = "fedcba9876543210"      # 16 hex chars / 8 bytes


class TestTracedHeader:
    def test_traced_roundtrip(self):
        got = roundtrip(
            RpcMessage(
                MsgType.REQUEST, "dgemm", [b"a", b"b"],
                trace_id=TRACE, span_id=SPAN,
            )
        )
        assert got.trace_id == TRACE
        assert got.span_id == SPAN
        assert got.name == "dgemm" and got.args == [b"a", b"b"]

    def test_trace_without_span_roundtrips_as_none(self):
        got = roundtrip(
            RpcMessage(MsgType.RESPONSE, "x", [], trace_id=TRACE)
        )
        assert got.trace_id == TRACE
        assert got.span_id is None

    def test_legacy_messages_carry_no_trace(self):
        got = roundtrip(RpcMessage(MsgType.REQUEST, "x", [b"y"]))
        assert got.trace_id is None and got.span_id is None

    def test_invalid_trace_hex_raises(self):
        from repro.transport import pipe_pair as _pp

        a, _b = _pp()
        tx = PlainCommunicator(a)
        with pytest.raises(RpcError, match="hex"):
            write_message(
                tx, RpcMessage(MsgType.REQUEST, "x", [], trace_id="zz" * 16)
            )
        with pytest.raises(RpcError, match="32 hex"):
            write_message(
                tx, RpcMessage(MsgType.REQUEST, "x", [], trace_id="abcd")
            )
        tx.close()

    def test_unsupported_traced_version_raises(self):
        a, b = pipe_pair()
        wire = bytearray()

        class Sink:
            def write(self, data):
                wire.extend(data)

        write_message(
            Sink(), RpcMessage(MsgType.REQUEST, "x", [], trace_id=TRACE)
        )
        wire[2] = 99  # the version byte after b"NT"
        a.send(bytes(wire))
        a.close()
        with pytest.raises(RpcError, match="version"):
            read_message(PlainCommunicator(b))


class TestGoldenHeaderBytes:
    """The two header forms are frozen byte layouts (wire compatibility)."""

    @staticmethod
    def capture(msg: RpcMessage) -> bytes:
        wire = bytearray()

        class Sink:
            def write(self, data):
                wire.extend(data)

        write_message(Sink(), msg)
        return bytes(wire)

    def test_legacy_message_bytes_are_pinned(self):
        wire = self.capture(RpcMessage(MsgType.REQUEST, "svc", [b"hi"]))
        assert wire == (
            b"NS"            # magic
            b"\x01"          # type = REQUEST
            b"\x00"          # status
            b"\x00\x03svc"   # name
            b"\x00\x01"      # nargs
            b"\x00\x00\x00\x00\x00\x00\x00\x02hi"  # arg: u64 length + bytes
        )

    def test_absent_trace_is_byte_identical_to_legacy(self):
        plain = self.capture(RpcMessage(MsgType.REQUEST, "svc", [b"hi"]))
        defaulted = self.capture(
            RpcMessage(
                MsgType.REQUEST, "svc", [b"hi"], trace_id=None, span_id=None
            )
        )
        assert plain == defaulted

    def test_traced_message_bytes_are_pinned(self):
        wire = self.capture(
            RpcMessage(
                MsgType.REQUEST, "svc", [b"hi"], trace_id=TRACE, span_id=SPAN
            )
        )
        assert wire == (
            b"NT"            # traced magic
            b"\x01"          # TRACE_WIRE_VERSION
            b"\x01"          # type = REQUEST
            b"\x00"          # status
            + bytes.fromhex(TRACE)
            + bytes.fromhex(SPAN)
            + b"\x00\x03svc"
            + b"\x00\x01"
            + b"\x00\x00\x00\x00\x00\x00\x00\x02hi"
        )

    def test_traced_without_span_pins_zero_span(self):
        wire = self.capture(
            RpcMessage(MsgType.REQUEST, "s", [], trace_id=TRACE)
        )
        assert bytes.fromhex(TRACE) in wire
        assert b"\x00" * 8 + b"\x00\x01s" in wire  # zero span, then name


class TestAssemblerTraced:
    def test_mixed_legacy_and_traced_stream(self):
        from repro.middleware.protocol import (
            MessageAssembler,
            iter_message_segments,
        )

        msgs = [
            RpcMessage(MsgType.REQUEST, "plain", [b"x"]),
            RpcMessage(
                MsgType.REQUEST, "traced", [b"y"], trace_id=TRACE, span_id=SPAN
            ),
            RpcMessage(MsgType.ERROR, "plain2", [b"z"], status=1),
        ]
        stream = b"".join(
            b"".join(iter_message_segments(m)) for m in msgs
        )
        got: list[RpcMessage] = []
        asm = MessageAssembler(got.append)
        for i in range(len(stream)):  # worst case: one byte at a time
            asm.feed(stream[i : i + 1])
        assert [m.name for m in got] == ["plain", "traced", "plain2"]
        assert [m.trace_id for m in got] == [None, TRACE, None]
        assert got[1].span_id == SPAN
        assert not asm.mid_message

    def test_assembler_rejects_bad_traced_version(self):
        from repro.middleware.protocol import (
            MessageAssembler,
            iter_message_segments,
        )

        wire = bytearray(
            b"".join(
                iter_message_segments(
                    RpcMessage(MsgType.REQUEST, "x", [], trace_id=TRACE)
                )
            )
        )
        wire[2] = 7
        asm = MessageAssembler(lambda m: None)
        with pytest.raises(RpcError, match="version"):
            asm.feed(bytes(wire))


@settings(max_examples=25, deadline=None)
@given(
    name=st.text(min_size=1, max_size=20),
    args=st.lists(st.binary(max_size=500), max_size=3),
    trace=st.binary(min_size=16, max_size=16),
    span=st.one_of(st.none(), st.binary(min_size=8, max_size=8)),
)
def test_traced_roundtrip_property(name, args, trace, span):
    span_hex = span.hex() if span is not None else None
    got = roundtrip(
        RpcMessage(
            MsgType.REQUEST, name, args,
            trace_id=trace.hex(), span_id=span_hex,
        )
    )
    assert got.trace_id == trace.hex()
    # All-zero span bytes mean "no span" on the wire.
    expected_span = None if span == b"\x00" * 8 else span_hex
    assert got.span_id == expected_span
    assert got.args == args
