"""RPC message framing over communicators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.middleware import (
    MsgType,
    PlainCommunicator,
    RpcError,
    RpcMessage,
    read_message,
    write_message,
)
from repro.transport import pipe_pair


def roundtrip(msg: RpcMessage) -> RpcMessage:
    a, b = pipe_pair(capacity=1 << 24)
    tx, rx = PlainCommunicator(a), PlainCommunicator(b)
    write_message(tx, msg)
    got = read_message(rx)
    tx.close()
    rx.close()
    assert got is not None
    return got


class TestStreamedArgs:
    def test_file_argument_streams(self):
        import io

        payload = bytes(range(256)) * 2000  # 512 000 bytes
        msg = RpcMessage(
            MsgType.REQUEST, "ibp.store", [b"cap", io.BytesIO(payload)]
        )
        got = roundtrip(msg)
        assert got.args == [b"cap", payload]  # receiver always sees bytes

    def test_unseekable_argument_rejected(self):
        import io

        class Pipe(io.RawIOBase):
            def readable(self):
                return True

            def read(self, n=-1):
                return b""

            def seekable(self):
                return False

            def tell(self):
                raise OSError("not seekable")

        a, b = pipe_pair(capacity=1 << 20)
        tx = PlainCommunicator(a)
        with pytest.raises(RpcError, match="seekable"):
            write_message(tx, RpcMessage(MsgType.REQUEST, "svc", [Pipe()]))
        tx.close()


class TestRoundTrip:
    def test_request(self):
        got = roundtrip(RpcMessage(MsgType.REQUEST, "dgemm", [b"arg1", b"arg2"]))
        assert got.type == MsgType.REQUEST
        assert got.name == "dgemm"
        assert got.args == [b"arg1", b"arg2"]
        assert got.status == 0

    def test_response_with_status(self):
        got = roundtrip(RpcMessage(MsgType.RESPONSE, "dgemm", [b"result"], status=0))
        assert got.type == MsgType.RESPONSE

    def test_error_message(self):
        got = roundtrip(RpcMessage(MsgType.ERROR, "dgemm", [b"boom"], status=1))
        assert got.type == MsgType.ERROR
        assert got.status == 1

    def test_empty_args(self):
        assert roundtrip(RpcMessage(MsgType.REQUEST, "norm", [])).args == []

    def test_empty_arg_payload(self):
        assert roundtrip(RpcMessage(MsgType.REQUEST, "x", [b""])).args == [b""]

    def test_unicode_service_name(self):
        assert roundtrip(RpcMessage(MsgType.REQUEST, "dgémm-π", [])).name == "dgémm-π"

    def test_bytes_written_accounting(self):
        a, b = pipe_pair(capacity=1 << 20)
        tx = PlainCommunicator(a)
        n = write_message(tx, RpcMessage(MsgType.REQUEST, "svc", [b"xy"]))
        assert tx.bytes_written == n
        a.close()
        b.close()


class TestErrors:
    def test_clean_eof_returns_none(self):
        a, b = pipe_pair()
        a.close()
        assert read_message(PlainCommunicator(b)) is None

    def test_bad_magic_raises(self):
        a, b = pipe_pair()
        a.send(b"XX\x01\x00")
        a.close()
        with pytest.raises(RpcError):
            read_message(PlainCommunicator(b))

    def test_truncated_header_raises(self):
        a, b = pipe_pair()
        a.send(b"NS")  # half a header
        a.close()
        with pytest.raises(RpcError):
            read_message(PlainCommunicator(b))


@settings(max_examples=50, deadline=None)
@given(
    name=st.text(min_size=1, max_size=30),
    args=st.lists(st.binary(max_size=2000), max_size=5),
)
def test_roundtrip_property(name, args):
    got = roundtrip(RpcMessage(MsgType.REQUEST, name, args))
    assert got.name == name
    assert got.args == args
