"""ReactorRpcServer: the RPC stack on the shared reactor core."""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.core import AdocConfig
from repro.data import dense_matrix
from repro.middleware.communicator import AdocCommunicator, PlainCommunicator
from repro.middleware.protocol import (
    MsgType,
    RpcMessage,
    read_message,
    write_message,
)
from repro.middleware.server import ReactorRpcServer
from repro.data import decode_matrix_ascii, encode_matrix_ascii
from repro.transport import SocketEndpoint

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    io_timeout_s=None,
)


@pytest.fixture(params=["plain", "adoc"])
def served(request, no_thread_leaks):
    server = ReactorRpcServer(
        "rx-test", config=CFG, mode=request.param, workers=2
    )
    address = server.listen()
    yield server, address, request.param
    server.close()


def connect(address, mode):
    sock = socket.create_connection(address, timeout=10.0)
    endpoint = SocketEndpoint(sock)
    if mode == "adoc":
        return AdocCommunicator(endpoint, CFG)
    return PlainCommunicator(endpoint)


def call(comm, name, args):
    write_message(comm, RpcMessage(MsgType.REQUEST, name, args))
    reply = read_message(comm)
    assert reply is not None
    return reply


def test_echo_roundtrip(served):
    server, address, mode = served
    comm = connect(address, mode)
    try:
        reply = call(comm, "echo", [b"hello", b"world"])
        assert reply.type == MsgType.RESPONSE
        assert reply.args == [b"hello", b"world"]
    finally:
        comm.close()


def test_dgemm_roundtrip(served):
    server, address, mode = served
    comm = connect(address, mode)
    try:
        a, b = dense_matrix(24, seed=1), dense_matrix(24, seed=2)
        reply = call(comm, "dgemm", [encode_matrix_ascii(a), encode_matrix_ascii(b)])
        assert reply.type == MsgType.RESPONSE
        np.testing.assert_allclose(
            decode_matrix_ascii(reply.args[0]), a @ b, rtol=1e-9
        )
    finally:
        comm.close()


def test_unknown_service_returns_error_not_disconnect(served):
    server, address, mode = served
    comm = connect(address, mode)
    try:
        reply = call(comm, "no-such-service", [])
        assert reply.type == MsgType.ERROR
        # The connection survives the refusal.
        again = call(comm, "echo", [b"still here"])
        assert again.args == [b"still here"]
    finally:
        comm.close()


def test_stats_count_requests_and_errors(served):
    server, address, mode = served
    comm = connect(address, mode)
    try:
        call(comm, "echo", [b"1"])
        call(comm, "echo", [b"2"])
        call(comm, "boom", [])
        assert server.stats.requests == 3
        assert server.stats.errors == 1
    finally:
        comm.close()


def test_many_connections_one_loop_thread(served):
    server, address, mode = served
    comms = [connect(address, mode) for _ in range(16)]
    try:
        for i, comm in enumerate(comms):
            write_message(
                comm,
                RpcMessage(MsgType.REQUEST, "echo", [f"c{i}".encode()]),
            )
        for i, comm in enumerate(comms):
            reply = read_message(comm)
            assert reply.args == [f"c{i}".encode()]
        assert server.connection_count == 16
    finally:
        for comm in comms:
            comm.close()


def test_inline_dispatch_mode(no_thread_leaks):
    server = ReactorRpcServer(
        "inline-test", config=CFG, dispatch="inline", workers=2
    )
    address = server.listen()
    comm = connect(address, "plain")
    try:
        reply = call(comm, "echo", [b"inline"])
        assert reply.args == [b"inline"]
    finally:
        comm.close()
        server.close()


def test_sequential_requests_on_one_connection(served):
    server, address, mode = served
    comm = connect(address, mode)
    try:
        for i in range(5):
            m = dense_matrix(10, seed=i)
            reply = call(comm, "transpose", [encode_matrix_ascii(m)])
            np.testing.assert_allclose(decode_matrix_ascii(reply.args[0]), m.T)
    finally:
        comm.close()


def test_invalid_mode_and_dispatch_rejected():
    with pytest.raises(ValueError):
        ReactorRpcServer("bad", mode="zip")
    with pytest.raises(ValueError):
        ReactorRpcServer("bad", dispatch="sideways")
