"""The event tracer: ring-buffer semantics and exporters.

The Chrome-trace exporter is pinned by a golden fixture
(``fixtures/chrome_trace_golden.json``): the output format is consumed
by external tools (chrome://tracing, Perfetto), so accidental drift is
a compatibility break, not a refactor.  Regenerate deliberately with
``python tests/obs/test_tracer.py`` after an intentional change.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.obs.tracer import EventTracer

GOLDEN = Path(__file__).parent / "fixtures" / "chrome_trace_golden.json"


class StepClock:
    """Deterministic clock: advances 1 ms per reading."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        t = self.now
        self.now += 0.001
        return t


def golden_tracer() -> EventTracer:
    """The fixed event sequence behind the golden Chrome trace."""
    tracer = EventTracer(capacity=64, clock=StepClock())
    with tracer.span("compress", buffer_id=0):
        tracer.record("level", "decision", thread="adoc-compress",
                      n=3, delta=1, old_level=6, new_level=5)
    tracer.record("enqueue", "send", thread="MainThread", depth=4)
    tracer.record("fault", "inject_reset", thread="MainThread",
                  direction="send", at_byte=1024)
    with tracer.span("emit"):
        pass
    return tracer


def test_ring_overflow_evicts_oldest_and_counts_drops():
    tracer = EventTracer(capacity=10, clock=StepClock())
    for i in range(25):
        tracer.record("buffer", "done", buffer_id=i)
    assert len(tracer) == 10
    assert tracer.recorded == 25
    assert tracer.dropped == 15
    kept = [e.args["buffer_id"] for e in tracer.events()]
    assert kept == list(range(15, 25))  # newest survive, oldest evicted


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventTracer(capacity=0)


def test_clear_resets_ring_and_counters():
    tracer = EventTracer(capacity=4)
    tracer.record("buffer", "x")
    tracer.clear()
    assert len(tracer) == 0 and tracer.recorded == 0 and tracer.dropped == 0


def test_events_filter_by_kind():
    tracer = EventTracer(capacity=8, clock=StepClock())
    tracer.record("level", "decision", n=1)
    tracer.record("guard", "trip")
    assert [e.kind for e in tracer.events("level")] == ["level"]


def test_record_captures_calling_thread_name():
    tracer = EventTracer(capacity=8)
    t = threading.Thread(
        target=lambda: tracer.record("buffer", "done"), name="adoc-compress"
    )
    t.start()
    t.join()
    assert tracer.events()[0].thread == "adoc-compress"


def test_span_timer_measures_with_injected_clock():
    tracer = EventTracer(capacity=8, clock=StepClock())
    with tracer.span("compress", buffer_id=7):
        pass
    (span,) = tracer.events("span")
    assert span.name == "compress"
    assert span.dur == pytest.approx(0.001)
    assert span.args == {"buffer_id": 7}


def test_jsonl_is_one_valid_object_per_event():
    tracer = golden_tracer()
    lines = tracer.to_jsonl().strip().splitlines()
    assert len(lines) == len(tracer)
    decoded = [json.loads(line) for line in lines]
    assert {d["kind"] for d in decoded} == {"span", "level", "enqueue", "fault"}


def test_chrome_trace_matches_golden_fixture():
    got = golden_tracer().to_chrome_trace()
    want = json.loads(GOLDEN.read_text())
    assert got == want


def test_chrome_trace_structure():
    trace = golden_tracer().to_chrome_trace()
    events = trace["traceEvents"]
    # Metadata rows: one process_name plus one thread_name per thread.
    meta = [e for e in events if e["ph"] == "M"]
    assert meta[0]["args"]["name"] == "adoc"
    thread_names = {e["args"]["name"] for e in meta[1:]}
    assert {"adoc-compress", "MainThread"} <= thread_names
    spans = [e for e in events if e["ph"] == "X"]
    assert {s["name"] for s in spans} == {"compress", "emit"}
    assert all(s["dur"] > 0 for s in spans)
    instants = [e for e in events if e["ph"] == "i"]
    assert all(e["s"] == "t" for e in instants)
    # Timestamps are rebased microseconds starting at zero.
    assert min(e["ts"] for e in events if "ts" in e) == 0.0


if __name__ == "__main__":  # regenerate the golden fixture
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(
        json.dumps(golden_tracer().to_chrome_trace(), indent=1, sort_keys=True)
        + "\n"
    )
    print(f"wrote {GOLDEN}")


class TestTraceContext:
    def test_set_trace_returns_previous_and_tags_events(self):
        tracer = EventTracer(capacity=8, clock=StepClock())
        assert tracer.current_trace() is None
        assert tracer.set_trace("t1") is None
        assert tracer.current_trace() == "t1"
        tracer.record("buffer", "work")
        assert tracer.set_trace(None) == "t1"
        tracer.record("buffer", "untraced")
        first, second = tracer.events()
        assert first.args["trace"] == "t1"
        assert "trace" not in second.args

    def test_explicit_trace_arg_wins_over_context(self):
        tracer = EventTracer(capacity=8, clock=StepClock())
        tracer.set_trace("ctx")
        tracer.record("buffer", "x", trace="explicit")
        assert tracer.events()[0].args["trace"] == "explicit"

    def test_trace_context_is_thread_local(self):
        tracer = EventTracer(capacity=8)
        tracer.set_trace("main-trace")
        seen: list[str | None] = []

        def worker() -> None:
            seen.append(tracer.current_trace())
            tracer.set_trace("worker-trace")
            tracer.record("buffer", "w")

        t = threading.Thread(target=worker, name="ctx-worker")
        t.start()
        t.join()
        assert seen == [None]  # the worker does not inherit main's trace
        assert tracer.current_trace() == "main-trace"

    def test_new_ids_are_hex_and_distinct(self):
        from repro.obs.tracer import new_span_id, new_trace_id

        t1, t2 = new_trace_id(), new_trace_id()
        assert len(t1) == 32 and len(t2) == 32 and t1 != t2
        s = new_span_id()
        assert len(s) == 16
        int(t1, 16), int(s, 16)  # both parse as hex


class TestTraceDroppedMetric:
    def test_sync_counts_each_drop_once(self):
        from repro.obs.telemetry import Telemetry

        tele = Telemetry(enabled=True, tracer_capacity=2)
        counter = tele.metrics.counter(
            "repro_trace_dropped_total",
            "trace events evicted from the bounded ring",
        )
        tele.sync_trace_metrics()
        assert counter.value() == 0  # series materializes at zero
        for i in range(5):
            tele.event("buffer", f"b{i}")
        tele.sync_trace_metrics()
        tele.sync_trace_metrics()  # idempotent: no double count
        assert counter.value() == 3

    def test_sync_survives_ring_clear(self):
        from repro.obs.telemetry import Telemetry

        tele = Telemetry(enabled=True, tracer_capacity=2)
        for i in range(4):
            tele.event("buffer", f"b{i}")
        tele.sync_trace_metrics()
        tele.tracer.clear()
        for i in range(3):
            tele.event("buffer", f"c{i}")
        tele.sync_trace_metrics()
        counter = tele.metrics.counter(
            "repro_trace_dropped_total",
            "trace events evicted from the bounded ring",
        )
        assert counter.value() == 2 + 1  # pre-clear drops + post-clear drop


class TestMergeChromeTraces:
    def make_trace(self, name: str, epoch_base: float | None = None) -> dict:
        tracer = EventTracer(capacity=16, clock=StepClock())
        tracer.record("buffer", f"{name}-event", thread="worker")
        trace = tracer.to_chrome_trace(process_name=name)
        if epoch_base is not None:
            trace["otherData"]["epoch_base"] = epoch_base
        return trace

    def test_each_input_gets_its_own_pid(self):
        from repro.obs.tracer import merge_chrome_traces

        merged = merge_chrome_traces(
            [self.make_trace("a"), self.make_trace("b"), self.make_trace("c")]
        )
        pids = {e["pid"] for e in merged["traceEvents"]}
        assert pids == {1, 2, 3}

    def test_names_replace_process_name_metadata(self):
        from repro.obs.tracer import merge_chrome_traces

        merged = merge_chrome_traces(
            [self.make_trace("a"), self.make_trace("b")], names=["p0", "p1"]
        )
        proc_meta = [
            e for e in merged["traceEvents"] if e.get("name") == "process_name"
        ]
        assert [(e["pid"], e["args"]["name"]) for e in proc_meta] == [
            (1, "p0"), (2, "p1")
        ]

    def test_names_length_mismatch_raises(self):
        from repro.obs.tracer import merge_chrome_traces

        with pytest.raises(ValueError, match="one entry per trace"):
            merge_chrome_traces([self.make_trace("a")], names=["x", "y"])

    def test_wall_clock_alignment_shifts_later_processes(self):
        from repro.obs.tracer import merge_chrome_traces

        early = self.make_trace("early", epoch_base=100.0)
        late = self.make_trace("late", epoch_base=100.5)  # started 500 ms later
        merged = merge_chrome_traces([early, late])
        by_pid = {}
        for e in merged["traceEvents"]:
            if e["ph"] != "M":
                by_pid[e["pid"]] = e["ts"]
        assert by_pid[1] == 0.0
        assert by_pid[2] == pytest.approx(500_000.0)  # +500 ms in us

    def test_missing_epoch_base_disables_alignment(self):
        from repro.obs.tracer import merge_chrome_traces

        merged = merge_chrome_traces(
            [self.make_trace("a", epoch_base=100.0), self.make_trace("b")]
        )
        ts = [e["ts"] for e in merged["traceEvents"] if e["ph"] != "M"]
        assert ts == [0.0, 0.0]  # both keep their private zero

    def test_injected_clock_exports_no_epoch_base(self):
        trace = self.make_trace("a")
        assert "epoch_base" not in trace["otherData"]

    def test_real_clock_exports_epoch_base(self):
        tracer = EventTracer(capacity=4)
        tracer.record("buffer", "x")
        meta = tracer.to_chrome_trace()["otherData"]
        assert isinstance(meta["epoch_base"], float)
