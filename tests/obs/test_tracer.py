"""The event tracer: ring-buffer semantics and exporters.

The Chrome-trace exporter is pinned by a golden fixture
(``fixtures/chrome_trace_golden.json``): the output format is consumed
by external tools (chrome://tracing, Perfetto), so accidental drift is
a compatibility break, not a refactor.  Regenerate deliberately with
``python tests/obs/test_tracer.py`` after an intentional change.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.obs.tracer import EventTracer

GOLDEN = Path(__file__).parent / "fixtures" / "chrome_trace_golden.json"


class StepClock:
    """Deterministic clock: advances 1 ms per reading."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        t = self.now
        self.now += 0.001
        return t


def golden_tracer() -> EventTracer:
    """The fixed event sequence behind the golden Chrome trace."""
    tracer = EventTracer(capacity=64, clock=StepClock())
    with tracer.span("compress", buffer_id=0):
        tracer.record("level", "decision", thread="adoc-compress",
                      n=3, delta=1, old_level=6, new_level=5)
    tracer.record("enqueue", "send", thread="MainThread", depth=4)
    tracer.record("fault", "inject_reset", thread="MainThread",
                  direction="send", at_byte=1024)
    with tracer.span("emit"):
        pass
    return tracer


def test_ring_overflow_evicts_oldest_and_counts_drops():
    tracer = EventTracer(capacity=10, clock=StepClock())
    for i in range(25):
        tracer.record("buffer", "done", buffer_id=i)
    assert len(tracer) == 10
    assert tracer.recorded == 25
    assert tracer.dropped == 15
    kept = [e.args["buffer_id"] for e in tracer.events()]
    assert kept == list(range(15, 25))  # newest survive, oldest evicted


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventTracer(capacity=0)


def test_clear_resets_ring_and_counters():
    tracer = EventTracer(capacity=4)
    tracer.record("buffer", "x")
    tracer.clear()
    assert len(tracer) == 0 and tracer.recorded == 0 and tracer.dropped == 0


def test_events_filter_by_kind():
    tracer = EventTracer(capacity=8, clock=StepClock())
    tracer.record("level", "decision", n=1)
    tracer.record("guard", "trip")
    assert [e.kind for e in tracer.events("level")] == ["level"]


def test_record_captures_calling_thread_name():
    tracer = EventTracer(capacity=8)
    t = threading.Thread(
        target=lambda: tracer.record("buffer", "done"), name="adoc-compress"
    )
    t.start()
    t.join()
    assert tracer.events()[0].thread == "adoc-compress"


def test_span_timer_measures_with_injected_clock():
    tracer = EventTracer(capacity=8, clock=StepClock())
    with tracer.span("compress", buffer_id=7):
        pass
    (span,) = tracer.events("span")
    assert span.name == "compress"
    assert span.dur == pytest.approx(0.001)
    assert span.args == {"buffer_id": 7}


def test_jsonl_is_one_valid_object_per_event():
    tracer = golden_tracer()
    lines = tracer.to_jsonl().strip().splitlines()
    assert len(lines) == len(tracer)
    decoded = [json.loads(line) for line in lines]
    assert {d["kind"] for d in decoded} == {"span", "level", "enqueue", "fault"}


def test_chrome_trace_matches_golden_fixture():
    got = golden_tracer().to_chrome_trace()
    want = json.loads(GOLDEN.read_text())
    assert got == want


def test_chrome_trace_structure():
    trace = golden_tracer().to_chrome_trace()
    events = trace["traceEvents"]
    # Metadata rows: one process_name plus one thread_name per thread.
    meta = [e for e in events if e["ph"] == "M"]
    assert meta[0]["args"]["name"] == "adoc"
    thread_names = {e["args"]["name"] for e in meta[1:]}
    assert {"adoc-compress", "MainThread"} <= thread_names
    spans = [e for e in events if e["ph"] == "X"]
    assert {s["name"] for s in spans} == {"compress", "emit"}
    assert all(s["dur"] > 0 for s in spans)
    instants = [e for e in events if e["ph"] == "i"]
    assert all(e["s"] == "t" for e in instants)
    # Timestamps are rebased microseconds starting at zero.
    assert min(e["ts"] for e in events if "ts" in e) == 0.0


if __name__ == "__main__":  # regenerate the golden fixture
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(
        json.dumps(golden_tracer().to_chrome_trace(), indent=1, sort_keys=True)
        + "\n"
    )
    print(f"wrote {GOLDEN}")
