"""End-to-end acceptance: a traced transfer explains itself.

The ISSUE acceptance bar: with telemetry enabled, one pipelined
transfer must produce a valid Chrome trace with spans for all four
pipeline threads and one Figure-2 ``level`` decision per input buffer,
each carrying ``(n, delta, old_level, new_level)``.  Compression is
forced (levels 1..10) because over an in-memory pipe the bandwidth
probe classifies the link as "very fast network" and takes the raw
fast path, which never runs the controller.
"""

from __future__ import annotations

import json
import threading
import time

from repro.core import AdocConfig, AdocSocket
from repro.data import ascii_data
from repro.obs import Telemetry, extract_timeline
from repro.transport import pipe_pair

#: The four pipeline stages the paper's Figure 1 draws.
PIPELINE_SPANS = {"compress", "emit", "recv", "decompress"}


def traced_transfer(size: int = 6 * 200 * 1024) -> tuple[Telemetry, object, object, int]:
    """One forced-compression transfer; returns (tele, tx_stats, rx_stats, buffers)."""
    tele = Telemetry(enabled=True)
    cfg = AdocConfig(telemetry=tele)
    payload = ascii_data(size, seed=11)
    a, b = pipe_pair()
    tx, rx = AdocSocket(a, cfg), AdocSocket(b, cfg)
    got: list[bytes] = []
    reader = threading.Thread(
        target=lambda: got.append(rx.read_exact(len(payload))),
        name="test-reader",
        daemon=True,
    )
    reader.start()
    tx.write_levels(payload, 1, 10)
    reader.join(timeout=30)
    stats = tx.stats
    # Receive-side spans are recorded when the worker threads unwind;
    # closing the sender EOFs the pipe, then give them a beat.
    tx.close()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if PIPELINE_SPANS <= {e.name for e in tele.tracer.events("span")}:
            break
        time.sleep(0.02)
    rx_stats = rx.stats
    rx.close()
    assert got and got[0] == payload
    buffers = -(-size // cfg.buffer_size)
    return tele, stats, rx_stats, buffers


def test_traced_transfer_covers_all_four_pipeline_stages():
    tele, _, _, buffers = traced_transfer()

    span_names = {e.name for e in tele.tracer.events("span")}
    assert PIPELINE_SPANS <= span_names

    # One Figure-2 decision per buffer, on the compression thread; the
    # adapter also decides once at stream start, hence >=.
    levels = tele.tracer.events("level")
    assert len(levels) >= buffers
    for event in levels:
        assert {"n", "delta", "old_level", "new_level"} <= set(event.args)

    # The timeline extractor sees the same series.
    points = extract_timeline(tele.tracer)
    assert len(points) == len(levels)
    assert all(1 <= p.new_level <= 10 for p in points)

    # The export is real Chrome trace JSON: serialisable, with one
    # thread_name row per pipeline stage's thread.
    trace = tele.tracer.to_chrome_trace()
    json.dumps(trace)
    thread_rows = {
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {"adoc-compress", "adoc-recv", "adoc-decompress"} <= thread_rows

    digest = tele.digest()
    assert digest["level_decisions"] == len(levels)
    assert digest["mean_level"] > 0
    assert set(digest["span_time_s"]) >= PIPELINE_SPANS


def test_metrics_cover_both_directions():
    tele, tx_stats, rx_stats, _ = traced_transfer()
    reg = tele.metrics
    sent, received = tx_stats.snapshot(), rx_stats.snapshot()

    payload = reg.counter("adoc_payload_bytes_total", "", ("direction",))
    assert payload.value(direction="send") == sent.payload_bytes
    assert payload.value(direction="recv") == received.recv_payload_bytes

    # The receiving socket's accounting mirrors the sender's: same one
    # message, same payload, and wire bytes actually compressed.
    assert received.recv_messages == sent.messages == 1
    assert 0 < sent.wire_bytes < sent.payload_bytes
    assert received.recv_payload_bytes == sent.payload_bytes
    assert received.recv_wire_bytes >= sent.wire_bytes
    assert received.recv_compression_ratio > 1.0
    assert received.recv_decompressed_packets > 0

    decisions = reg.counter("adoc_level_decisions_total", "", ())
    assert decisions.value() == len(tele.tracer.events("level"))

    # Prometheus exposition renders without blowing up and mentions
    # the headline families.
    text = reg.expose()
    for family in (
        "adoc_payload_bytes_total",
        "adoc_queue_depth_packets",
        "adoc_compression_level",
    ):
        assert family in text


def test_disabled_telemetry_records_nothing():
    tele = Telemetry(enabled=False)
    cfg = AdocConfig(telemetry=tele)
    payload = ascii_data(256 * 1024, seed=3)
    a, b = pipe_pair()
    tx, rx = AdocSocket(a, cfg), AdocSocket(b, cfg)
    got: list[bytes] = []
    reader = threading.Thread(
        target=lambda: got.append(rx.read_exact(len(payload))),
        name="test-reader",
        daemon=True,
    )
    reader.start()
    tx.write_levels(payload, 1, 10)
    reader.join(timeout=30)
    tx.close()
    rx.close()
    assert got and got[0] == payload
    assert len(tele.tracer) == 0
    assert tele.metrics.to_json() == {}
