"""Chaos meets telemetry: injected faults must show up in the trace.

A chaos run that can't show *where* its faults landed is unreviewable;
the contract is that every fired :class:`~repro.transport.faults.Fault`
records a ``fault`` event and bumps ``adoc_faults_injected_total``.
The transport layer reaches telemetry through the process-wide handle
(it sits below ``AdocConfig`` in the import graph), so these tests
install one via ``set_active_telemetry`` and restore it after.
"""

from __future__ import annotations

import pytest

from repro.obs import Telemetry, set_active_telemetry
from repro.transport.base import TransportClosed
from repro.transport.faults import Fault, faulty_pipe_pair


@pytest.fixture
def tele():
    handle = Telemetry(enabled=True)
    previous = set_active_telemetry(handle)
    yield handle
    set_active_telemetry(previous)


def test_fired_faults_become_trace_events(tele):
    a, b = faulty_pipe_pair(
        faults_a=[
            Fault("stall", at_byte=4, duration_s=0.001),
            Fault("corrupt", at_byte=8, length=2),
        ]
    )
    # One fault can fire per operation: the stall lands on the first
    # send, the corrupt trigger on the second.
    a.send(b"x" * 8)
    a.send(b"x" * 8)
    b.recv(16)

    events = tele.tracer.events("fault")
    assert [e.name for e in events] == ["inject_stall", "inject_corrupt"]
    stall = events[0]
    assert stall.args["direction"] == "send"
    assert stall.args["at_byte"] == 4
    assert stall.args["duration_s"] == pytest.approx(0.001)

    counter = tele.metrics.counter("adoc_faults_injected_total", "", ("kind",))
    assert counter.value(kind="stall") == 1
    assert counter.value(kind="corrupt") == 1


def test_reset_fault_traces_before_raising(tele):
    a, _b = faulty_pipe_pair(faults_a=[Fault("reset", at_byte=0)])
    with pytest.raises(TransportClosed):
        a.send(b"payload")
    (event,) = tele.tracer.events("fault")
    assert event.name == "inject_reset"
    assert tele.metrics.counter(
        "adoc_faults_injected_total", "", ("kind",)
    ).value(kind="reset") == 1


def test_faults_without_telemetry_stay_silent(tele):
    set_active_telemetry(None)  # back to the env default (disabled)
    a, b = faulty_pipe_pair(
        faults_a=[Fault("stall", at_byte=1, duration_s=0.001)]
    )
    a.send(b"abc")
    b.recv(3)
    assert tele.tracer.events("fault") == []
