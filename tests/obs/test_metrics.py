"""The metrics registry: thread safety, registration, exposition."""

from __future__ import annotations

import json
import time
import threading

import pytest

from repro.obs.metrics import MetricsRegistry


def test_concurrent_counter_increments_are_lossless():
    reg = MetricsRegistry()
    counter = reg.counter("ops_total", "ops", ("worker",))
    n_threads, per_thread = 8, 2000

    def hammer(i: int) -> None:
        bound = counter.labels(worker="shared")
        for _ in range(per_thread):
            bound.inc()
        counter.inc(worker=f"w{i}")

    threads = [
        threading.Thread(target=hammer, args=(i,), name=f"hammer-{i}")
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value(worker="shared") == n_threads * per_thread
    for i in range(n_threads):
        assert counter.value(worker=f"w{i}") == 1


def test_concurrent_registration_yields_one_metric():
    reg = MetricsRegistry()
    got: list[object] = []
    barrier = threading.Barrier(8)

    def register() -> None:
        barrier.wait()
        got.append(reg.counter("races_total", "", ()))

    threads = [
        threading.Thread(target=register, name=f"reg-{i}") for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len({id(m) for m in got}) == 1


def test_registration_is_idempotent_but_type_clash_raises():
    reg = MetricsRegistry()
    first = reg.counter("x_total")
    assert reg.counter("x_total") is first
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("x_total")


def test_label_mismatch_raises():
    reg = MetricsRegistry()
    counter = reg.counter("y_total", "", ("kind",))
    with pytest.raises(ValueError, match="expected labels"):
        counter.inc(flavour="nope")


def test_counters_reject_negative_increments():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="only go up"):
        reg.counter("z_total").inc(-1)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("depth", "", ("queue",))
    g.set(5, queue="send")
    g.inc(2, queue="send")
    g.dec(queue="send")
    assert g.value(queue="send") == 6


def test_histogram_buckets_mean_and_percentile():
    reg = MetricsRegistry()
    h = reg.histogram("lat", "", (), buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0, 100.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap.count == 5
    assert snap.counts == (1, 2, 1, 1)  # last cell is +Inf
    assert snap.mean == pytest.approx(106.5 / 5)
    assert 0.0 <= snap.percentile(50) <= 2.0


def test_histogram_rejects_unsorted_buckets():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="sorted"):
        reg.histogram("bad", buckets=(2.0, 1.0))


def test_prometheus_exposition_shape():
    reg = MetricsRegistry()
    reg.counter("a_total", "things done", ("kind",)).inc(kind="x")
    reg.gauge("b").set(2.5)
    reg.histogram("c", "", (), buckets=(1.0,)).observe(0.5)
    text = reg.expose()
    assert "# HELP a_total things done" in text
    assert "# TYPE a_total counter" in text
    assert 'a_total{kind="x"} 1' in text
    assert "b 2.5" in text
    # Histogram: cumulative buckets, +Inf, _sum, _count.
    assert 'c_bucket{le="1"} 1' in text
    assert 'c_bucket{le="+Inf"} 1' in text
    assert "c_sum 0.5" in text
    assert "c_count 1" in text


def test_json_export_is_json_safe_and_complete():
    reg = MetricsRegistry()
    reg.counter("a_total", "", ("k",)).inc(amount=3, k="v")
    reg.histogram("h", "", (), buckets=(1.0,)).observe(2.0)
    data = json.loads(reg.dump_json())
    assert data["a_total"]["type"] == "counter"
    assert data["a_total"]["series"][0] == {"labels": {"k": "v"}, "value": 3.0}
    hist = data["h"]["series"][0]
    assert hist["count"] == 1 and hist["inf"] == 1


class TestLabelEscaping:
    def test_backslash_quote_and_newline_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("esc_total", "", ("path",)).inc(
            path='C:\\tmp\\"log"\nline'
        )
        text = reg.expose()
        assert 'esc_total{path="C:\\\\tmp\\\\\\"log\\"\\nline"} 1' in text
        # The exposition itself stays one-line-per-sample.
        assert all(
            line.startswith(("#", "esc_total")) for line in text.strip().splitlines()
        )

    def test_merged_exposition_escapes_identity_labels(self):
        from repro.obs.metrics import expose_snapshot

        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        text = expose_snapshot(
            reg.to_json(), extra_labels={"instance": 'host"1"\n'}
        )
        assert 'a_total{instance="host\\"1\\"\\n"} 1' in text

    def test_help_text_newlines_do_not_break_exposition(self):
        reg = MetricsRegistry()
        reg.counter("h_total", "line1\nline2").inc()
        for line in reg.expose().strip().splitlines():
            assert line.startswith("#") or line.startswith("h_total")


class TestHistogramInvariantsUnderConcurrency:
    def test_sum_count_and_buckets_agree_after_concurrent_observe(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "", (), buckets=(1.0, 2.0, 4.0))
        n_threads, per_thread = 8, 2000
        values = (0.5, 1.5, 3.0, 9.0)

        def hammer() -> None:
            for i in range(per_thread):
                h.observe(values[i % len(values)])

        threads = [
            threading.Thread(target=hammer, name=f"obs-{i}")
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = h.snapshot()
        total = n_threads * per_thread
        assert snap.count == total
        assert sum(snap.counts) == total  # bucket cells partition the count
        assert snap.total == pytest.approx(
            sum(values) / len(values) * total, rel=1e-9
        )
        assert snap.mean == pytest.approx(snap.total / snap.count)
        per_cell = total // len(values)
        assert snap.counts == (per_cell, per_cell, per_cell, per_cell)
        # Percentile interpolates within a bucket; the +Inf cell reports
        # its lower bound.
        assert snap.percentile(25) <= 1.0
        assert snap.percentile(99) >= 4.0

    def test_snapshot_during_concurrent_mutation_is_coherent(self):
        """A snapshot taken mid-hammer must itself be internally
        consistent: count equals the bucket total, sum never behind
        what the buckets imply."""
        reg = MetricsRegistry()
        h = reg.histogram("race", "", (), buckets=(1.0,))
        stop = threading.Event()

        def hammer() -> None:
            while not stop.is_set():
                h.observe(0.5)

        threads = [
            threading.Thread(target=hammer, name=f"mut-{i}") for i in range(4)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                snap = h.snapshot()
                assert sum(snap.counts) == snap.count
                assert snap.total == pytest.approx(0.5 * snap.count)
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_registry_snapshot_during_registration_race(self):
        """to_json()/expose() while other threads register and bump new
        metrics: every exported series must be complete (no partially
        initialized entries), never an exception."""
        reg = MetricsRegistry()
        stop = threading.Event()
        failures: list[BaseException] = []

        def register() -> None:
            i = 0
            while not stop.is_set():
                reg.counter(f"c{i % 50}_total", "", ("k",)).inc(k="v")
                reg.histogram(f"h{i % 50}", "", (), buckets=(1.0,)).observe(0.5)
                i += 1

        def snapshot() -> None:
            try:
                while not stop.is_set():
                    data = reg.to_json()
                    for info in data.values():
                        assert info["type"] in ("counter", "gauge", "histogram")
                        for entry in info["series"]:
                            assert "labels" in entry
                            assert "value" in entry or "count" in entry
                    reg.expose()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        writers = [
            threading.Thread(target=register, name=f"w-{i}") for i in range(3)
        ]
        reader = threading.Thread(target=snapshot, name="reader")
        for t in [*writers, reader]:
            t.start()
        time.sleep(0.3)
        stop.set()
        for t in [*writers, reader]:
            t.join()
        assert failures == []


class TestSnapshotRendering:
    def test_expose_snapshot_matches_live_expose(self):
        from repro.obs.metrics import expose_snapshot

        reg = MetricsRegistry()
        reg.counter("a_total", "help", ("k",)).inc(k="v")
        reg.gauge("g").set(1.5)
        reg.histogram("h", "", (), buckets=(1.0, 2.0)).observe(1.5)
        assert expose_snapshot(reg.to_json()) == reg.expose()

    def test_merge_snapshots_keeps_per_instance_series(self):
        from repro.obs.metrics import merge_snapshots

        a = MetricsRegistry()
        a.counter("x_total").inc(5)
        b = MetricsRegistry()
        b.counter("x_total").inc(7)
        merged = merge_snapshots(
            [
                ({"instance": "a"}, a.to_json()),
                ({"instance": "b"}, b.to_json()),
            ]
        )
        series = merged["x_total"]["series"]
        got = {e["labels"]["instance"]: e["value"] for e in series}
        assert got == {"a": 5.0, "b": 7.0}  # identity kept, not summed

    def test_merge_snapshots_drops_type_clashes(self):
        from repro.obs.metrics import merge_snapshots

        a = MetricsRegistry()
        a.counter("x_total").inc()
        b = MetricsRegistry()
        b.gauge("x_total").set(3)
        merged = merge_snapshots(
            [({"i": "a"}, a.to_json()), ({"i": "b"}, b.to_json())]
        )
        assert merged["x_total"]["type"] == "counter"
        assert len(merged["x_total"]["series"]) == 1

    def test_merged_histograms_render(self):
        from repro.obs.metrics import expose_snapshot, merge_snapshots

        a = MetricsRegistry()
        a.histogram("h", "", (), buckets=(1.0,)).observe(0.5)
        text = expose_snapshot(
            merge_snapshots([({"instance": "a"}, a.to_json())])
        )
        assert 'h_bucket{instance="a",le="1"} 1' in text
        assert 'h_count{instance="a"} 1' in text
