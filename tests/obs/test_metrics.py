"""The metrics registry: thread safety, registration, exposition."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.metrics import MetricsRegistry


def test_concurrent_counter_increments_are_lossless():
    reg = MetricsRegistry()
    counter = reg.counter("ops_total", "ops", ("worker",))
    n_threads, per_thread = 8, 2000

    def hammer(i: int) -> None:
        bound = counter.labels(worker="shared")
        for _ in range(per_thread):
            bound.inc()
        counter.inc(worker=f"w{i}")

    threads = [
        threading.Thread(target=hammer, args=(i,), name=f"hammer-{i}")
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value(worker="shared") == n_threads * per_thread
    for i in range(n_threads):
        assert counter.value(worker=f"w{i}") == 1


def test_concurrent_registration_yields_one_metric():
    reg = MetricsRegistry()
    got: list[object] = []
    barrier = threading.Barrier(8)

    def register() -> None:
        barrier.wait()
        got.append(reg.counter("races_total", "", ()))

    threads = [
        threading.Thread(target=register, name=f"reg-{i}") for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len({id(m) for m in got}) == 1


def test_registration_is_idempotent_but_type_clash_raises():
    reg = MetricsRegistry()
    first = reg.counter("x_total")
    assert reg.counter("x_total") is first
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("x_total")


def test_label_mismatch_raises():
    reg = MetricsRegistry()
    counter = reg.counter("y_total", "", ("kind",))
    with pytest.raises(ValueError, match="expected labels"):
        counter.inc(flavour="nope")


def test_counters_reject_negative_increments():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="only go up"):
        reg.counter("z_total").inc(-1)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("depth", "", ("queue",))
    g.set(5, queue="send")
    g.inc(2, queue="send")
    g.dec(queue="send")
    assert g.value(queue="send") == 6


def test_histogram_buckets_mean_and_percentile():
    reg = MetricsRegistry()
    h = reg.histogram("lat", "", (), buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0, 100.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap.count == 5
    assert snap.counts == (1, 2, 1, 1)  # last cell is +Inf
    assert snap.mean == pytest.approx(106.5 / 5)
    assert 0.0 <= snap.percentile(50) <= 2.0


def test_histogram_rejects_unsorted_buckets():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="sorted"):
        reg.histogram("bad", buckets=(2.0, 1.0))


def test_prometheus_exposition_shape():
    reg = MetricsRegistry()
    reg.counter("a_total", "things done", ("kind",)).inc(kind="x")
    reg.gauge("b").set(2.5)
    reg.histogram("c", "", (), buckets=(1.0,)).observe(0.5)
    text = reg.expose()
    assert "# HELP a_total things done" in text
    assert "# TYPE a_total counter" in text
    assert 'a_total{kind="x"} 1' in text
    assert "b 2.5" in text
    # Histogram: cumulative buckets, +Inf, _sum, _count.
    assert 'c_bucket{le="1"} 1' in text
    assert 'c_bucket{le="+Inf"} 1' in text
    assert "c_sum 0.5" in text
    assert "c_count 1" in text


def test_json_export_is_json_safe_and_complete():
    reg = MetricsRegistry()
    reg.counter("a_total", "", ("k",)).inc(amount=3, k="v")
    reg.histogram("h", "", (), buckets=(1.0,)).observe(2.0)
    data = json.loads(reg.dump_json())
    assert data["a_total"]["type"] == "counter"
    assert data["a_total"]["series"][0] == {"labels": {"k": "v"}, "value": 3.0}
    hist = data["h"]["series"][0]
    assert hist["count"] == 1 and hist["inf"] == 1
