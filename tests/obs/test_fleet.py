"""Fleet telemetry: frame protocol, store, pusher, aggregator.

The integration tests exercise the acceptance path for ``adoc top
--fleet``: a live aggregator fed by several *concurrently pushing
processes*, whose merged exposition must contain every instance.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time

import pytest

from repro.obs.fleet import (
    FLEET_WIRE_VERSION,
    PUSH,
    QUERY,
    REPLY,
    FleetProtocolError,
    FleetStore,
    FrameAssembler,
    MetricsPusher,
    encode_frame,
    fetch_fleet,
    instance_name,
    push_many,
    push_once,
    serve_fleet,
    summarize_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry


def sample_registry(wire: int = 100, level: float = 5.0) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("adoc_wire_bytes_total", "", ("direction",)).inc(
        wire, direction="tx"
    )
    reg.gauge("adoc_compression_level").set(level)
    return reg


class TestFrameProtocol:
    def test_roundtrip_through_assembler(self):
        got: list[tuple[int, dict]] = []
        asm = FrameAssembler(lambda t, p: got.append((t, p)))
        asm.feed(encode_frame(PUSH, {"a": 1}) + encode_frame(QUERY, {"b": 2}))
        assert got == [(PUSH, {"a": 1}), (QUERY, {"b": 2})]
        assert asm.frames == 2

    def test_byte_at_a_time_feed(self):
        got: list[tuple[int, dict]] = []
        asm = FrameAssembler(lambda t, p: got.append((t, p)))
        wire = encode_frame(REPLY, {"x": [1, 2, 3]})
        for i in range(len(wire)):
            asm.feed(wire[i : i + 1])
        assert got == [(REPLY, {"x": [1, 2, 3]})]

    def test_frame_header_layout(self):
        wire = encode_frame(PUSH, {})
        assert wire[:2] == b"FP"
        assert wire[2] == FLEET_WIRE_VERSION
        assert wire[3] == PUSH
        assert int.from_bytes(wire[4:8], "big") == len(wire) - 8

    def test_bad_magic_raises(self):
        asm = FrameAssembler(lambda t, p: None)
        with pytest.raises(FleetProtocolError, match="magic"):
            asm.feed(b"XX\x01\x01\x00\x00\x00\x00")

    def test_version_mismatch_raises(self):
        wire = bytearray(encode_frame(PUSH, {}))
        wire[2] = 99
        asm = FrameAssembler(lambda t, p: None)
        with pytest.raises(FleetProtocolError, match="version"):
            asm.feed(bytes(wire))

    def test_oversize_frame_rejected_before_buffering(self):
        asm = FrameAssembler(lambda t, p: None, max_frame_bytes=16)
        header = b"FP" + bytes([FLEET_WIRE_VERSION, PUSH]) + (1 << 20).to_bytes(4, "big")
        with pytest.raises(FleetProtocolError, match="bound"):
            asm.feed(header)

    def test_non_object_payload_rejected(self):
        import struct

        body = b"[1,2]"
        wire = struct.pack(">2sBBI", b"FP", FLEET_WIRE_VERSION, PUSH, len(body)) + body
        asm = FrameAssembler(lambda t, p: None)
        with pytest.raises(FleetProtocolError, match="object"):
            asm.feed(wire)


class TestFleetStore:
    def test_update_and_merge_stamps_identity_labels(self):
        store = FleetStore(ttl_s=10.0, clock=lambda: 0.0)
        store.update(
            {"job": "adoc", "instance": "a"}, sample_registry(wire=10).to_json()
        )
        store.update(
            {"job": "adoc", "instance": "b"}, sample_registry(wire=20).to_json()
        )
        merged = store.merged()
        series = merged["adoc_wire_bytes_total"]["series"]
        labels = {tuple(sorted(e["labels"].items())) for e in series}
        assert (
            ("direction", "tx"), ("instance", "a"), ("job", "adoc")
        ) in labels
        assert len(series) == 2

    def test_repeat_push_replaces_not_duplicates(self):
        store = FleetStore(ttl_s=10.0, clock=lambda: 0.0)
        for wire in (10, 50):
            store.update(
                {"job": "j", "instance": "i"}, sample_registry(wire=wire).to_json()
            )
        assert store.instance_count == 1
        (inst,) = store.to_json()["instances"]
        assert inst["pushes"] == 2
        assert inst["summary"]["wire_bytes"] == 50.0

    def test_expiry_drops_silent_instances(self):
        now = [0.0]
        store = FleetStore(ttl_s=5.0, clock=lambda: now[0])
        store.update({"job": "j", "instance": "old"}, {})
        now[0] = 4.0
        store.update({"job": "j", "instance": "new"}, {})
        now[0] = 6.0
        assert store.expire() == [("j", "old")]
        assert store.instance_count == 1
        assert store.expired == 1

    def test_push_resets_staleness(self):
        now = [0.0]
        store = FleetStore(ttl_s=5.0, clock=lambda: now[0])
        store.update({"job": "j", "instance": "i"}, {})
        now[0] = 4.0
        store.update({"job": "j", "instance": "i"}, {})
        now[0] = 8.0
        assert store.expire() == []

    def test_summary_row_fields(self):
        summary = summarize_snapshot(sample_registry(wire=42, level=7).to_json())
        assert summary["wire_bytes"] == 42.0
        assert summary["level"] == 7.0
        assert summary["retries"] == 0.0
        assert summary["degraded"] == 0.0

    def test_ttl_must_be_positive(self):
        with pytest.raises(ValueError):
            FleetStore(ttl_s=0.0)


class TestAggregator:
    def test_push_query_roundtrip(self):
        agg, addr = serve_fleet(ttl_s=30.0)
        try:
            push_once(addr, sample_registry(wire=123), job="t", instance="one")
            push_once(addr, sample_registry(wire=456), job="t", instance="two")
            view = fetch_fleet(addr)
            names = [i["instance"] for i in view["instances"]]
            assert names == ["one", "two"]
            assert view["ttl_s"] == 30.0
            prom = fetch_fleet(addr, fmt="prom")["text"]
            assert (
                'adoc_wire_bytes_total{direction="tx",job="t",instance="one"} 123'
                in prom
            )
        finally:
            agg.close()

    def test_push_accepts_telemetry_and_counts_trace_drops(self):
        agg, addr = serve_fleet(ttl_s=30.0)
        try:
            tele = Telemetry(enabled=True, tracer_capacity=2)
            for i in range(5):
                tele.event("buffer", f"b{i}")
            push_once(addr, tele, instance="traced")
            prom = fetch_fleet(addr, fmt="prom")["text"]
            assert (
                'repro_trace_dropped_total{job="adoc",instance="traced"} 3'
                in prom
            )
        finally:
            agg.close()

    def test_query_expires_stale_instances(self):
        agg, addr = serve_fleet(ttl_s=0.2)
        try:
            push_once(addr, sample_registry(), instance="ghost")
            assert [i["instance"] for i in fetch_fleet(addr)["instances"]] == [
                "ghost"
            ]
            deadline = time.monotonic() + 5.0
            while fetch_fleet(addr)["instances"]:
                assert time.monotonic() < deadline, "instance never expired"
                time.sleep(0.05)
        finally:
            agg.close()

    def test_push_many_over_one_connection(self):
        agg, addr = serve_fleet(ttl_s=30.0)
        try:
            n = push_many(
                addr,
                (
                    (f"flow-{i}", sample_registry(wire=i).to_json())
                    for i in range(5)
                ),
                job="sim",
            )
            assert n == 5
            deadline = time.monotonic() + 5.0
            while len(fetch_fleet(addr)["instances"]) < 5:
                assert time.monotonic() < deadline
                time.sleep(0.02)
        finally:
            agg.close()

    def test_close_is_idempotent(self):
        agg, _ = serve_fleet()
        agg.close()
        agg.close()


class TestMetricsPusher:
    def test_periodic_push_and_final_snapshot(self):
        agg, addr = serve_fleet(ttl_s=30.0)
        try:
            reg = sample_registry(wire=7)
            pusher = MetricsPusher(
                addr, reg, job="bg", instance="p1", interval_s=0.05
            ).start()
            deadline = time.monotonic() + 5.0
            while pusher.pushes < 3:
                assert time.monotonic() < deadline, "pusher never pushed"
                time.sleep(0.02)
            pusher.close()
            view = fetch_fleet(addr)
            (inst,) = view["instances"]
            assert inst["instance"] == "p1"
            assert inst["pushes"] >= 3
            assert pusher.errors == 0
        finally:
            agg.close()

    def test_absent_aggregator_is_recorded_not_raised(self):
        pusher = MetricsPusher(
            ("127.0.0.1", 1), MetricsRegistry(), interval_s=0.01, timeout=0.2
        ).start()
        deadline = time.monotonic() + 5.0
        while pusher.errors < 1:
            assert time.monotonic() < deadline, "error never recorded"
            time.sleep(0.02)
        pusher.close()
        assert pusher.last_error is not None

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsPusher(("h", 1), MetricsRegistry(), interval_s=0.0)

    def test_default_instance_identity(self):
        assert ":" in instance_name()


_CHILD = """
import sys
from repro.obs.fleet import MetricsPusher
from repro.obs.metrics import MetricsRegistry

host, port, name = sys.argv[1], int(sys.argv[2]), sys.argv[3]
reg = MetricsRegistry()
reg.counter("adoc_wire_bytes_total", "", ("direction",)).inc(
    1000, direction="tx"
)
reg.gauge("adoc_compression_level").set(6)
pusher = MetricsPusher(
    (host, port), reg, job="itest", instance=name, interval_s=0.05
).start()
import time
time.sleep(0.5)
pusher.close()
print("pushed", pusher.pushes)
"""


class TestMultiProcessIntegration:
    def test_three_processes_push_concurrently(self, tmp_path):
        """The acceptance path: >=3 separate pushing processes, one
        merged exposition containing every instance."""
        agg, addr = serve_fleet(ttl_s=30.0)
        procs = []
        try:
            for i in range(3):
                procs.append(
                    subprocess.Popen(
                        [sys.executable, "-c", _CHILD, addr[0], str(addr[1]), f"proc-{i}"],
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        text=True,
                    )
                )
            for p in procs:
                out, err = p.communicate(timeout=60)
                assert p.returncode == 0, err
                assert "pushed" in out
            view = fetch_fleet(addr)
            names = {i["instance"] for i in view["instances"]}
            assert names == {"proc-0", "proc-1", "proc-2"}
            prom = fetch_fleet(addr, fmt="prom")["text"]
            for name in names:
                assert f'instance="{name}"' in prom
            # Per-instance series keep their identity (no cross-instance
            # summing): three tx series, 1000 wire bytes each.
            lines = [
                line
                for line in prom.splitlines()
                if line.startswith("adoc_wire_bytes_total{")
            ]
            assert len(lines) == 3
            assert all(line.endswith(" 1000") for line in lines)
        finally:
            for p in procs:
                if p.poll() is None:
                    p.kill()
            agg.close()

    def test_simulator_fleet_publishes_flows(self):
        from repro.simulator import simulate_fleet

        agg, addr = serve_fleet(ttl_s=30.0)
        try:
            results = simulate_fleet(addr, flows=3, size=1 << 18)
            assert len(results) == 3
            deadline = time.monotonic() + 5.0
            while len(fetch_fleet(addr)["instances"]) < 3:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            view = fetch_fleet(addr)
            assert [i["instance"] for i in view["instances"]] == [
                "flow-0000", "flow-0001", "flow-0002"
            ]
            assert all(i["job"] == "adoc-sim" for i in view["instances"])
            for inst in view["instances"]:
                assert inst["summary"]["payload_bytes"] == float(1 << 18)
        finally:
            agg.close()

    def test_aggregator_self_telemetry(self):
        tele = Telemetry(enabled=True)
        agg, addr = serve_fleet(ttl_s=30.0, telemetry=tele)
        try:
            push_once(addr, sample_registry(), job="j", instance="i")
            deadline = time.monotonic() + 5.0
            counter = tele.metrics.counter(
                "adoc_fleet_pushes_total",
                "metric snapshots ingested by the aggregator",
                ("job",),
            )
            while counter.value(job="j") < 1:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            assert (
                tele.metrics.gauge(
                    "adoc_fleet_instances",
                    "instances currently in the merged fleet view",
                ).value()
                == 1
            )
        finally:
            agg.close()


def test_fetch_fleet_rejects_unknown_format():
    with pytest.raises(ValueError, match="fmt"):
        fetch_fleet(("127.0.0.1", 1), fmt="xml")


def test_encoded_frames_are_valid_json_payloads():
    wire = encode_frame(PUSH, {"meta": {"job": "j"}, "metrics": {}})
    assert json.loads(wire[8:]) == {"meta": {"job": "j"}, "metrics": {}}
