"""CSV export of experiment results."""

from __future__ import annotations

import csv
import io

from repro.bench import run_bandwidth_figure, run_netsolve_figure, run_table1, run_table2
from repro.bench.export import (
    bandwidth_to_csv,
    latency_to_csv,
    netsolve_to_csv,
    table1_to_csv,
)
from repro.data import synthetic_hb_bytes, synthetic_tar_bytes


def parse(text: str) -> list[dict[str, str]]:
    return list(csv.DictReader(io.StringIO(text)))


def test_bandwidth_csv():
    pts = run_bandwidth_figure(3, sizes=[1024, 1024 * 1024], repeats=1)
    rows = parse(bandwidth_to_csv(pts))
    assert len(rows) == 8  # 2 sizes x 4 methods
    assert {r["method"] for r in rows} == {"posix", "ascii", "binary", "incompressible"}
    assert all(float(r["bandwidth_mbit_s"]) > 0 for r in rows)


def test_table1_csv():
    hb = synthetic_hb_bytes(n=400, band=3, seed=1)
    tar = synthetic_tar_bytes(n_members=1, member_size=50_000, seed=1)
    rows = parse(table1_to_csv(run_table1(hb, tar)))
    assert len(rows) == 20
    assert rows[0]["algo"] == "lzf"
    assert all(float(r["ratio"]) > 0.9 for r in rows)


def test_netsolve_csv():
    rows = parse(netsolve_to_csv(run_netsolve_figure(8, ns=[256])))
    assert len(rows) == 4
    assert {r["kind"] for r in rows} == {"dense", "sparse"}
    assert {r["adoc"] for r in rows} == {"0", "1"}


def test_latency_csv():
    rows = parse(latency_to_csv(run_table2()))
    assert len(rows) == 12  # 4 networks x 3 modes
    by = {(r["network"], r["mode"]): float(r["latency_ms"]) for r in rows}
    assert by[("internet", "posix")] == 80.0
