"""Experiment harness sanity (fast variants of every table/figure)."""

from __future__ import annotations

import pytest

from repro.bench import (
    FIGURE_SIZES,
    PAPER_CLAIMS,
    render_bandwidth_figure,
    render_netsolve_figure,
    render_table1,
    render_table2,
    run_bandwidth_figure,
    run_netsolve_figure,
    run_table1,
    run_table2,
)
from repro.data import synthetic_hb_bytes, synthetic_tar_bytes

MB = 1024 * 1024


@pytest.fixture(scope="module")
def small_table1():
    hb = synthetic_hb_bytes(n=800, band=5, seed=1)
    tar = synthetic_tar_bytes(n_members=2, member_size=100_000, seed=1)
    return run_table1(hb, tar)


class TestTable1:
    def test_twenty_rows(self, small_table1):
        assert len(small_table1) == 20  # 10 algos x 2 files

    def test_compression_time_grows_with_level(self, small_table1):
        """The paper's monotone shape, on this host's real codecs.
        Individual adjacent levels can tie; the ends must separate."""
        for fname in ("oilpann.hb", "bin.tar"):
            gz = [r for r in small_table1 if r.file == fname and r.algo.startswith("gzip")]
            assert gz[-1].compress_s > gz[0].compress_s

    def test_ratio_saturates(self, small_table1):
        for fname in ("oilpann.hb", "bin.tar"):
            gz = [r for r in small_table1 if r.file == fname and r.algo.startswith("gzip")]
            assert gz[8].ratio >= gz[0].ratio
            # Gains after gzip 6 are small (paper: "does not increase
            # significantly").
            assert gz[8].ratio / gz[5].ratio < 1.15

    def test_lzf_lowest_ratio(self, small_table1):
        for fname in ("oilpann.hb", "bin.tar"):
            rows = [r for r in small_table1 if r.file == fname]
            lzf = next(r for r in rows if r.algo == "lzf")
            assert lzf.ratio == min(r.ratio for r in rows)

    def test_ascii_beats_binary_ratio(self, small_table1):
        hb6 = next(r for r in small_table1 if r.file == "oilpann.hb" and r.algo == "gzip 6")
        tar6 = next(r for r in small_table1 if r.file == "bin.tar" and r.algo == "gzip 6")
        assert hb6.ratio > tar6.ratio

    def test_render(self, small_table1):
        text = render_table1(small_table1)
        assert "lzf" in text and "gzip 9" in text


class TestBandwidthFigures:
    SMALL_SIZES = [1024, 256 * 1024, 2 * MB]

    @pytest.mark.parametrize("fig", [3, 4, 5, 6, 7])
    def test_runs_and_renders(self, fig):
        pts = run_bandwidth_figure(fig, sizes=self.SMALL_SIZES, repeats=2)
        assert len(pts) == len(self.SMALL_SIZES) * 4
        text = render_bandwidth_figure(pts, f"Figure {fig}")
        assert "posix" in text

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_bandwidth_figure(12)

    def test_default_sizes_span_paper_axis(self):
        assert FIGURE_SIZES[0] <= 100
        assert FIGURE_SIZES[-1] == 32 * MB


class TestTable2:
    def test_matches_paper_within_tolerance(self):
        table = run_table2()
        for net, (posix_ms, _, forced_ms) in PAPER_CLAIMS["table2_ms"].items():
            assert table[net]["posix"] * 1e3 == pytest.approx(posix_ms, rel=0.05)
            assert table[net]["forced"] * 1e3 == pytest.approx(forced_ms, rel=0.3)

    def test_render(self):
        text = render_table2(run_table2())
        assert "renater" in text and "forced" in text.lower()


class TestNetsolveFigures:
    def test_fig8_shape(self):
        cells = run_netsolve_figure(8, ns=[512, 1024])
        assert len(cells) == 2 * 2 * 2
        by = {(c.n, c.kind, c.adoc): c for c in cells}
        for n in (512, 1024):
            for kind in ("dense", "sparse"):
                # AdOC never loses.
                assert by[(n, kind, True)].total_s <= by[(n, kind, False)].total_s * 1.02
        # Time grows with size.
        assert by[(1024, "dense", False)].total_s > by[(512, "dense", False)].total_s

    def test_fig9_sparse_gain_much_larger_than_dense(self):
        cells = run_netsolve_figure(9, ns=[1024])
        by = {(c.kind, c.adoc): c for c in cells}
        dense_gain = by[("dense", False)].total_s / by[("dense", True)].total_s
        sparse_gain = by[("sparse", False)].total_s / by[("sparse", True)].total_s
        assert sparse_gain > dense_gain * 3

    def test_render(self):
        text = render_netsolve_figure(run_netsolve_figure(8, ns=[256]), "Fig 8")
        assert "dense+AdOC" in text

    def test_invalid_fig_rejected(self):
        with pytest.raises(ValueError):
            run_netsolve_figure(10)
