"""Report renderers."""

from __future__ import annotations

from repro.bench import format_bytes, render_table
from repro.bench.experiments import Table1Row
from repro.bench.report import render_table1


class TestFormatBytes:
    def test_bands(self):
        assert format_bytes(10) == "10 B"
        assert format_bytes(8 * 1024) == "8 KB"
        assert format_bytes(32 * 1024 * 1024) == "32 MB"


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(["a", "long-header"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        # All rows share the same width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_empty_rows(self):
        out = render_table(["x"], [])
        assert "x" in out


class TestRenderTable1:
    def test_missing_file_renders_dash(self):
        rows = [Table1Row("lzf", "oilpann.hb", 0.5, 2.0, 0.1)]
        out = render_table1(rows)
        assert "lzf" in out
        assert "-" in out  # the absent bin.tar columns

    def test_preserves_algo_order(self):
        rows = [
            Table1Row("lzf", "oilpann.hb", 1, 2, 3),
            Table1Row("gzip 1", "oilpann.hb", 1, 2, 3),
            Table1Row("gzip 2", "oilpann.hb", 1, 2, 3),
        ]
        out = render_table1(rows)
        assert out.index("lzf") < out.index("gzip 1") < out.index("gzip 2")
