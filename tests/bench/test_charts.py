"""ASCII chart rendering."""

from __future__ import annotations

from repro.bench import run_bandwidth_figure
from repro.bench.charts import ascii_chart, bandwidth_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_rises_in_density(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
        assert line[0] == " "
        assert line[-1] == "@"

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_downsampling(self):
        line = sparkline(list(range(1000)), width=40)
        assert len(line) == 40
        assert line[-1] in "%@"


class TestAsciiChart:
    def test_contains_legend_and_bounds(self):
        chart = ascii_chart(
            {"a": [(1, 10), (2, 20)], "b": [(1, 5), (2, 40)]},
            title="T",
        )
        assert "T" in chart
        assert "* a" in chart and "o b" in chart
        assert "40" in chart

    def test_log_axes(self):
        chart = ascii_chart(
            {"s": [(10, 1), (10_000, 1000)]}, logx=True, logy=True
        )
        assert "1e+04" in chart or "10000" in chart or "1e+4" in chart

    def test_empty(self):
        assert "(no data)" in ascii_chart({}, title="x")

    def test_single_point(self):
        chart = ascii_chart({"p": [(5, 5)]})
        assert "*" in chart


def test_bandwidth_chart_end_to_end():
    pts = run_bandwidth_figure(3, sizes=[1024, 1024 * 1024], repeats=1)
    chart = bandwidth_chart(pts, "Fig 3")
    assert "posix" in chart
    assert "log-log" in chart
