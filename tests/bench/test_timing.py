"""Live measurement helpers (bench.timing)."""

from __future__ import annotations

import pytest

from repro.bench import Timing, live_echo_transfer, live_pingpong, repeat_timing
from repro.core import AdocConfig
from repro.data import ascii_data
from repro.transport import pipe_pair

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
)


class TestTiming:
    def test_from_samples(self):
        t = Timing.from_samples([0.2, 0.1, 0.4])
        assert t.best == 0.1
        assert t.worst == 0.4
        assert t.n == 3
        assert t.mean == pytest.approx(0.7 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Timing.from_samples([])

    def test_repeat_timing_counts(self):
        calls = []
        t = repeat_timing(lambda: calls.append(1), repeats=4)
        assert len(calls) == 4
        assert t.n == 4
        assert t.best >= 0


class TestLiveEcho:
    def test_raw_echo(self):
        payload = ascii_data(50_000, seed=1)
        elapsed = live_echo_transfer(pipe_pair, payload, use_adoc=False)
        assert elapsed > 0

    def test_adoc_echo(self):
        payload = ascii_data(50_000, seed=2)
        elapsed = live_echo_transfer(pipe_pair, payload, use_adoc=True, config=CFG)
        assert elapsed > 0


class TestLivePingpong:
    @pytest.mark.parametrize("use_adoc", [False, True])
    def test_pingpong_measures(self, use_adoc):
        t = live_pingpong(pipe_pair, use_adoc=use_adoc, repeats=5, config=CFG)
        assert t.n == 5
        assert 0 < t.best <= t.worst
