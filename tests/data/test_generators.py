"""Workload generators: calibrated ratios, determinism, dispatch."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DATA_CLASSES,
    ascii_data,
    binary_data,
    data_by_name,
    gzip6_ratio,
    incompressible_data,
)


class TestCalibration:
    """Section 6.1.1 targets: ~5 / ~2 / 1 at gzip level 6."""

    def test_ascii_ratio_near_five(self):
        assert gzip6_ratio(ascii_data(1_000_000, seed=3)) == pytest.approx(5.0, rel=0.15)

    def test_binary_ratio_near_two(self):
        assert gzip6_ratio(binary_data(1_000_000, seed=3)) == pytest.approx(2.0, rel=0.15)

    def test_incompressible_ratio_at_most_one(self):
        assert gzip6_ratio(incompressible_data(1_000_000, seed=3)) <= 1.001

    def test_ordering_stable_across_seeds(self):
        for seed in (0, 1, 99):
            a = gzip6_ratio(ascii_data(300_000, seed))
            b = gzip6_ratio(binary_data(300_000, seed))
            i = gzip6_ratio(incompressible_data(300_000, seed))
            assert a > b > i


class TestDeterminism:
    @pytest.mark.parametrize("gen", [ascii_data, binary_data, incompressible_data])
    def test_same_seed_same_bytes(self, gen):
        assert gen(10_000, seed=7) == gen(10_000, seed=7)

    @pytest.mark.parametrize("gen", [ascii_data, binary_data, incompressible_data])
    def test_different_seed_different_bytes(self, gen):
        assert gen(10_000, seed=7) != gen(10_000, seed=8)


class TestSizes:
    @pytest.mark.parametrize("gen", [ascii_data, binary_data, incompressible_data])
    @pytest.mark.parametrize("n", [1, 13, 100, 8192, 100_000])
    def test_exact_size(self, gen, n):
        assert len(gen(n, seed=1)) == n


class TestDispatch:
    def test_names(self):
        assert set(DATA_CLASSES) == {"ascii", "binary", "incompressible"}

    @pytest.mark.parametrize("name", DATA_CLASSES)
    def test_dispatch_matches_direct(self, name):
        direct = {"ascii": ascii_data, "binary": binary_data, "incompressible": incompressible_data}
        assert data_by_name(name, 5000, seed=2) == direct[name](5000, seed=2)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            data_by_name("video", 100)


def test_ascii_is_actually_ascii():
    data = ascii_data(50_000, seed=1)
    data.decode("ascii")  # must not raise
    assert all(32 <= b <= 126 or b == 10 for b in data)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=0, max_value=50_000), seed=st.integers(0, 1000))
def test_size_property(n, seed):
    assert len(binary_data(n, seed)) == n
