"""Harwell-Boeing format: writer/reader round trip, oilpann stand-in."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import HBMatrix, read_hb, synthetic_hb_bytes, write_hb
from repro.data.generators import gzip6_ratio


def small_matrix() -> HBMatrix:
    # 3x3 with 4 entries: [[1, 0, 0], [-2.5, 3, 0], [0, 0, 4e-7]]
    return HBMatrix(
        title="TINY TEST MATRIX",
        key="TEST",
        nrows=3,
        ncols=3,
        colptr=np.array([0, 2, 3, 4]),
        rowind=np.array([0, 1, 1, 2]),
        values=np.array([1.0, -2.5, 3.0, 4e-7]),
    )


class TestRoundTrip:
    def test_small_exact(self):
        m = small_matrix()
        back = read_hb(write_hb(m))
        assert back.nrows == 3 and back.ncols == 3 and back.nnz == 4
        assert back.title == "TINY TEST MATRIX"
        assert back.key == "TEST"
        np.testing.assert_array_equal(back.colptr, m.colptr)
        np.testing.assert_array_equal(back.rowind, m.rowind)
        np.testing.assert_allclose(back.values, m.values, rtol=1e-12)

    def test_write_read_write_stable(self):
        raw = write_hb(small_matrix())
        assert write_hb(read_hb(raw)) == raw

    def test_to_dense(self):
        d = small_matrix().to_dense()
        expected = np.array([[1.0, 0, 0], [-2.5, 3.0, 0], [0, 0, 4e-7]])
        np.testing.assert_allclose(d, expected)

    def test_negative_adjacent_values_parse(self):
        """Fixed-width floats can abut with no separator — the classic
        HB parsing trap."""
        m = HBMatrix(
            title="NEG",
            key="NEG",
            nrows=2,
            ncols=2,
            colptr=np.array([0, 2, 4]),
            rowind=np.array([0, 1, 0, 1]),
            values=np.array([-0.74286, -0.001444, -1.0, -2.0]),
        )
        back = read_hb(write_hb(m))
        np.testing.assert_allclose(back.values, m.values, rtol=1e-10)


class TestValidation:
    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError):
            read_hb(b"TOO SHORT\n")

    def test_wrong_type_rejected(self):
        raw = write_hb(small_matrix()).decode()
        bad = raw.replace("RUA", "CSA", 1).encode()
        with pytest.raises(ValueError):
            read_hb(bad)

    def test_body_size_mismatch_rejected(self):
        raw = write_hb(small_matrix())
        lines = raw.decode().splitlines()
        # Drop the last value line entirely.
        bad = "\n".join(lines[:-1]).encode() + b"\n"
        with pytest.raises(ValueError):
            read_hb(bad)


class TestSyntheticBenchFile:
    def test_parses_as_valid_hb(self):
        raw = synthetic_hb_bytes(n=300, band=5, seed=1)
        m = read_hb(raw)
        assert m.nrows == m.ncols == 300
        assert m.nnz == m.values.size

    def test_is_ascii(self):
        synthetic_hb_bytes(n=100).decode("ascii")

    def test_compressibility_in_paper_band(self):
        """Table 1: oilpann.hb compresses ~5-7x with gzip; the stand-in
        must sit in that texture class."""
        raw = synthetic_hb_bytes()
        assert 4.0 <= gzip6_ratio(raw) <= 8.0

    def test_deterministic(self):
        assert synthetic_hb_bytes(n=200, seed=3) == synthetic_hb_bytes(n=200, seed=3)
