"""Matrix workloads and NetSolve-style marshalling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    decode_matrix_ascii,
    decode_matrix_binary,
    dense_matrix,
    encode_matrix_ascii,
    encode_matrix_binary,
    gzip6_ratio,
    sparse_matrix,
)


class TestGeneration:
    def test_dense_shape_and_determinism(self):
        m = dense_matrix(32, seed=9)
        assert m.shape == (32, 32)
        assert np.array_equal(m, dense_matrix(32, seed=9))

    def test_dense_exponent_range(self):
        """Entries span the paper's 1e-20..1e+20 exponent range."""
        m = np.abs(dense_matrix(200, seed=1))
        assert m.min() < 1e-15
        assert m.max() > 1e15

    def test_sparse_is_all_zero(self):
        assert not sparse_matrix(64).any()


class TestAsciiMarshalling:
    def test_roundtrip_dense(self):
        m = dense_matrix(24, seed=3)
        back = decode_matrix_ascii(encode_matrix_ascii(m))
        # 13 significant digits survive the text round trip.
        np.testing.assert_allclose(back, m, rtol=1e-12)

    def test_roundtrip_sparse(self):
        m = sparse_matrix(24)
        assert not decode_matrix_ascii(encode_matrix_ascii(m)).any()

    def test_rejects_non_matrix_payload(self):
        with pytest.raises(ValueError):
            decode_matrix_ascii(b"BIN 2 2\nnope")

    def test_rejects_wrong_entry_count(self):
        good = encode_matrix_ascii(np.ones((2, 2)))
        truncated = good[:-22]  # drop one 22-byte token
        with pytest.raises(ValueError):
            decode_matrix_ascii(truncated)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            encode_matrix_ascii(np.ones(5))

    def test_compressibility_split(self):
        """The experiment's premise: sparse text collapses, dense barely
        compresses."""
        dense = encode_matrix_ascii(dense_matrix(100, seed=4))
        sparse = encode_matrix_ascii(sparse_matrix(100))
        assert gzip6_ratio(sparse) > 50
        assert gzip6_ratio(dense) < 3.5


class TestBinaryMarshalling:
    def test_roundtrip_exact(self):
        m = dense_matrix(16, seed=5)
        back = decode_matrix_binary(encode_matrix_binary(m))
        assert np.array_equal(back, m)

    def test_rejects_ascii_payload(self):
        with pytest.raises(ValueError):
            decode_matrix_binary(encode_matrix_ascii(np.ones((2, 2))))

    def test_rejects_truncation(self):
        raw = encode_matrix_binary(np.ones((4, 4)))
        with pytest.raises(ValueError):
            decode_matrix_binary(raw[:-8])


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=12),
    cols=st.integers(min_value=1, max_value=12),
    seed=st.integers(0, 100),
)
def test_ascii_roundtrip_property(rows, cols, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(-1e3, 1e3, size=(rows, cols))
    back = decode_matrix_ascii(encode_matrix_ascii(m))
    np.testing.assert_allclose(back, m, rtol=1e-12)
