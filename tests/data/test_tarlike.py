"""Synthetic executable tarball (bin.tar stand-in)."""

from __future__ import annotations

import io
import tarfile

from repro.data import synthetic_executable, synthetic_tar_bytes
from repro.data.generators import gzip6_ratio
from repro.compress import lzf_compress


class TestExecutableBlob:
    def test_size_and_determinism(self):
        blob = synthetic_executable(10_000, seed=1)
        assert len(blob) == 10_000
        assert blob == synthetic_executable(10_000, seed=1)
        assert blob != synthetic_executable(10_000, seed=2)

    def test_elf_magic(self):
        assert synthetic_executable(1000, seed=0)[:4] == b"\x7fELF"


class TestArchive:
    def test_is_valid_ustar(self):
        raw = synthetic_tar_bytes(n_members=3, member_size=20_000, seed=1)
        with tarfile.open(fileobj=io.BytesIO(raw)) as tar:
            names = tar.getnames()
            assert len(names) == 3
            blob = tar.extractfile(names[0]).read()
            assert blob[:4] == b"\x7fELF"
            assert len(blob) == 20_000

    def test_compressibility_in_paper_band(self):
        """Table 1: bin.tar compresses ~2.2-2.5x with gzip, ~1.7 with
        lzf; the stand-in must land in that texture class."""
        raw = synthetic_tar_bytes()
        assert 1.9 <= gzip6_ratio(raw) <= 3.2
        lzf_ratio = len(raw) / len(lzf_compress(raw))
        assert 1.4 <= lzf_ratio <= 2.6

    def test_deterministic(self):
        a = synthetic_tar_bytes(n_members=2, member_size=10_000, seed=5)
        b = synthetic_tar_bytes(n_members=2, member_size=10_000, seed=5)
        assert a == b
