"""Synthetic images and PGM/PPM serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.images import read_pnm, synthetic_image, write_pnm


class TestSyntheticImage:
    def test_shapes(self):
        assert synthetic_image(10, 20, 1).shape == (10, 20)
        assert synthetic_image(10, 20, 3).shape == (10, 20, 3)

    def test_deterministic(self):
        assert np.array_equal(synthetic_image(16, 16, 3, 7), synthetic_image(16, 16, 3, 7))

    def test_uses_dynamic_range(self):
        img = synthetic_image(64, 64, 3, seed=1)
        assert img.min() < 60 and img.max() > 180

    def test_bad_channels(self):
        with pytest.raises(ValueError):
            synthetic_image(4, 4, 2)


class TestPnm:
    def test_pgm_roundtrip(self):
        img = synthetic_image(24, 31, 1, seed=2)
        assert np.array_equal(read_pnm(write_pnm(img)), img)

    def test_ppm_roundtrip(self):
        img = synthetic_image(24, 31, 3, seed=3)
        assert np.array_equal(read_pnm(write_pnm(img)), img)

    def test_header_layout(self):
        raw = write_pnm(synthetic_image(5, 7, 1))
        assert raw.startswith(b"P5\n7 5\n255\n")

    def test_comment_skipping(self):
        img = synthetic_image(4, 4, 1, seed=4)
        raw = write_pnm(img)
        with_comment = raw[:3] + b"# a comment\n" + raw[3:]
        assert np.array_equal(read_pnm(with_comment), img)

    def test_rejects_non_pnm(self):
        with pytest.raises(ValueError):
            read_pnm(b"JFIF....")

    def test_rejects_16bit(self):
        with pytest.raises(ValueError):
            read_pnm(b"P5\n2 2\n65535\n" + bytes(8))

    def test_rejects_float_input(self):
        with pytest.raises(ValueError):
            write_pnm(np.zeros((3, 3)))
