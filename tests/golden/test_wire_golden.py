"""Golden wire-format tests: the sender's bytes are frozen.

Each fixture under ``fixtures/`` is the exact wire output the seed
sender produced for one send shape (see ``util.SHAPES``).  Any change
to the send path must reproduce them byte-for-byte; regenerating the
fixtures (``generate_fixtures.py``) is only legitimate for an
intentional protocol version bump.
"""

from __future__ import annotations

import pytest

from repro.core import ReceiverPipeline
from repro.transport import pipe_pair

from .util import (
    GOLDEN_CFG,
    SHAPES,
    capture_shape,
    current_zlib_version,
    fixture_path,
    recorded_zlib_version,
)


def _first_mismatch(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


@pytest.mark.parametrize("shape", SHAPES, ids=[s.name for s in SHAPES])
def test_wire_bytes_match_golden(shape):
    fixture = fixture_path(shape)
    assert fixture.exists(), (
        f"missing fixture {fixture} — run tests/golden/generate_fixtures.py "
        "(only for an intentional wire-format change)"
    )
    if shape.zlib_dependent and recorded_zlib_version() != current_zlib_version():
        pytest.skip(
            f"fixture generated with zlib {recorded_zlib_version()}, "
            f"runtime is {current_zlib_version()}"
        )
    expected = fixture.read_bytes()
    got = capture_shape(shape)
    if got != expected:
        i = _first_mismatch(got, expected)
        pytest.fail(
            f"wire bytes differ from golden fixture for shape {shape.name!r}: "
            f"got {len(got)} bytes, expected {len(expected)}, "
            f"first mismatch at offset {i}"
        )


@pytest.mark.parametrize("shape", SHAPES, ids=[s.name for s in SHAPES])
def test_golden_fixture_decodes(shape):
    """The frozen bytes must also *decode* — guards against freezing a
    corrupt capture, and proves old receivers read the frozen format."""
    if shape.zlib_dependent and recorded_zlib_version() != current_zlib_version():
        pytest.skip("fixture from a different zlib build")
    wire = fixture_path(shape).read_bytes()
    a, b = pipe_pair(capacity=1 << 20)
    receiver = ReceiverPipeline(b, GOLDEN_CFG)
    view = memoryview(wire)
    while view:
        sent = a.send(view)
        view = view[sent:]
    a.close()
    out = bytearray()
    while True:
        chunk = receiver.read(1 << 16)
        if not chunk:
            break
        out += chunk
    receiver.close()
    assert bytes(out) == shape.payload()
