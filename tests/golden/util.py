"""Shared definitions for the golden wire-format tests.

The golden fixtures pin the exact byte sequence the seed sender put on
the wire for every send *shape* the decision ladder can take.  The
refactored streaming engine must reproduce them byte-for-byte — the
wire format is an API-visible guarantee (a new sender must interoperate
with an old receiver and vice versa).

Every shape here is deterministic by construction:

* raw shapes (small bypass, probe + fast path, disabled compression)
  never consult the adapter, so thread scheduling cannot change the
  records;
* compressed shapes force ``min_level == max_level``, which pins the
  adapter's output regardless of queue timing, and use compressible
  data so the incompressible guard never trips;
* the LZF shape is bit-deterministic everywhere (our own codec); the
  zlib shape is deterministic for a fixed zlib build, so its fixture
  records the zlib runtime version and the test skips on a different
  build rather than fail spuriously.
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.core import AdocConfig, MessageSender
from repro.data import ascii_data

FIXTURE_DIR = Path(__file__).parent / "fixtures"
MANIFEST = FIXTURE_DIR / "MANIFEST.txt"

#: Small sizes so fixtures stay a few tens of KB while every ladder
#: branch (bypass / probe / pipeline / END-terminated) still engages.
GOLDEN_CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
)


class CaptureEndpoint:
    """Endpoint that records every wire byte and discards nothing.

    Deliberately *not* an :class:`Endpoint` subclass and deliberately
    without ``send_vectors``: capturing through the single-buffer
    fallback keeps the recorded bytes a plain concatenation, so the
    fixtures pin the wire stream independent of how sends are batched.
    """

    def __init__(self) -> None:
        self.buffer = bytearray()

    def send(self, data) -> int:
        self.buffer += data
        return len(data)

    def recv(self, n: int) -> bytes:
        return b""

    def close(self) -> None:
        pass


class _Unseekable(io.RawIOBase):
    """A pipe-like stream: readable, not seekable."""

    def __init__(self, payload: bytes) -> None:
        self._buf = io.BytesIO(payload)

    def readable(self) -> bool:
        return True

    def read(self, n: int = -1) -> bytes:
        return self._buf.read(n)

    def seekable(self) -> bool:
        return False

    def tell(self) -> int:
        raise OSError("not seekable")


@dataclass(frozen=True)
class Shape:
    """One golden send shape: a name, how to run it, determinism class."""

    name: str
    run: Callable[[MessageSender], object]
    #: The exact payload the shape sends (for decode round-trip checks).
    payload: Callable[[], bytes]
    #: Fixtures for zlib-bearing shapes are only comparable under the
    #: zlib build that produced them.
    zlib_dependent: bool = False


def _send_small(sender: MessageSender) -> object:
    # < small_message_threshold: raw bypass, no threads.
    return sender.send(ascii_data(4_000, seed=11))


def _send_empty(sender: MessageSender) -> object:
    return sender.send(b"")


def _send_fast_path(sender: MessageSender) -> object:
    # fast_network_bps=0 makes any probed speed "very fast": probe
    # records then raw records, chunked at buffer_size from the probe
    # offset (boundaries intentionally not aligned to the buffer grid).
    cfg = AdocConfig(
        buffer_size=16 * 1024,
        packet_size=2 * 1024,
        slice_size=2 * 1024,
        small_message_threshold=8 * 1024,
        probe_size=4 * 1024,
        fast_network_bps=0.0,
    )
    return sender.send(ascii_data(40_000, seed=12), cfg)


def _send_forced_zlib(sender: MessageSender) -> object:
    # min == max pins the adapter: every buffer compresses at level 6.
    return sender.send(ascii_data(50_000, seed=13), GOLDEN_CFG.with_levels(6, 6))


def _send_forced_lzf(sender: MessageSender) -> object:
    # Level 1 is our own LZF codec: bit-deterministic on any host.
    return sender.send(ascii_data(50_000, seed=14), GOLDEN_CFG.with_levels(1, 1))


def _send_buffer_boundary(sender: MessageSender) -> object:
    # Exactly two buffers with forced compression: exercises the
    # buffer-edge record split without adapter freedom.
    return sender.send(ascii_data(32 * 1024, seed=15), GOLDEN_CFG.with_levels(1, 1))


def _send_unknown_raw(sender: MessageSender) -> object:
    # Unseekable stream with compression disabled: END-terminated
    # message of raw buffer-size records.
    stream = _Unseekable(ascii_data(40_000, seed=16))
    return sender.send_stream(stream, GOLDEN_CFG.with_levels(0, 0))


def _send_unknown_forced_lzf(sender: MessageSender) -> object:
    # Unseekable stream through the pipeline at a pinned level.
    stream = _Unseekable(ascii_data(40_000, seed=17))
    return sender.send_stream(stream, GOLDEN_CFG.with_levels(1, 1))


SHAPES: list[Shape] = [
    Shape("known_small", _send_small, lambda: ascii_data(4_000, seed=11)),
    Shape("known_empty", _send_empty, lambda: b""),
    Shape("probe_fast_path", _send_fast_path, lambda: ascii_data(40_000, seed=12)),
    Shape(
        "forced_zlib6",
        _send_forced_zlib,
        lambda: ascii_data(50_000, seed=13),
        zlib_dependent=True,
    ),
    Shape("forced_lzf", _send_forced_lzf, lambda: ascii_data(50_000, seed=14)),
    Shape(
        "buffer_boundary_lzf",
        _send_buffer_boundary,
        lambda: ascii_data(32 * 1024, seed=15),
    ),
    Shape("unknown_length_raw", _send_unknown_raw, lambda: ascii_data(40_000, seed=16)),
    Shape(
        "unknown_length_lzf",
        _send_unknown_forced_lzf,
        lambda: ascii_data(40_000, seed=17),
    ),
]


def capture_shape(shape: Shape) -> bytes:
    """Run one shape against a fresh sender; return its wire bytes."""
    endpoint = CaptureEndpoint()
    sender = MessageSender(endpoint, GOLDEN_CFG)
    shape.run(sender)
    return bytes(endpoint.buffer)


def fixture_path(shape: Shape) -> Path:
    return FIXTURE_DIR / f"{shape.name}.bin"


def recorded_zlib_version() -> str | None:
    """The zlib build that generated the fixtures, from the manifest."""
    if not MANIFEST.exists():
        return None
    for line in MANIFEST.read_text().splitlines():
        if line.startswith("zlib:"):
            return line.split(":", 1)[1].strip()
    return None


def current_zlib_version() -> str:
    return zlib.ZLIB_RUNTIME_VERSION
