"""Regenerate the golden wire-format fixtures.

Run from the repo root::

    PYTHONPATH=src python tests/golden/generate_fixtures.py

Only regenerate when the wire format changes *intentionally* (protocol
version bump): the whole point of these fixtures is that refactors of
the send path reproduce them byte-for-byte.
"""

from __future__ import annotations

import hashlib

from util import (  # type: ignore[import-not-found]
    FIXTURE_DIR,
    MANIFEST,
    SHAPES,
    capture_shape,
    current_zlib_version,
    fixture_path,
)


def main() -> None:
    FIXTURE_DIR.mkdir(exist_ok=True)
    lines = [f"zlib: {current_zlib_version()}"]
    for shape in SHAPES:
        wire = capture_shape(shape)
        fixture_path(shape).write_bytes(wire)
        digest = hashlib.sha256(wire).hexdigest()[:16]
        lines.append(f"{shape.name}: {len(wire)} bytes sha256 {digest}")
        print(lines[-1])
    MANIFEST.write_text("\n".join(lines) + "\n")
    print(f"wrote {len(SHAPES)} fixtures to {FIXTURE_DIR}")


if __name__ == "__main__":
    main()
