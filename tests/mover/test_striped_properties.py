"""Property tests: striping reassembles exactly for any geometry."""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdocConfig
from repro.mover import receive_striped, send_striped
from repro.transport import pipe_pair

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
)


@settings(max_examples=20, deadline=None)
@given(
    payload=st.binary(min_size=0, max_size=60_000),
    n_streams=st.integers(min_value=1, max_value=5),
    chunk_size=st.integers(min_value=100, max_value=20_000),
)
def test_striping_geometry_property(payload, n_streams, chunk_size):
    pairs = [pipe_pair() for _ in range(n_streams)]
    err = []

    def send():
        try:
            send_striped([p[0] for p in pairs], payload, chunk_size, CFG)
        except BaseException as exc:  # noqa: BLE001
            err.append(exc)

    t = threading.Thread(target=send, daemon=True)
    t.start()
    got = receive_striped([p[1] for p in pairs], CFG)
    t.join(timeout=60)
    assert not t.is_alive()
    assert not err
    assert got == payload
