"""Striped multi-stream mover."""

from __future__ import annotations

import threading

import pytest

from repro.core import AdocConfig
from repro.data import ascii_data, binary_data, incompressible_data
from repro.mover import receive_striped, send_striped
from repro.transport import LAN100, pipe_pair

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
)


def striped_roundtrip(data, n_streams: int, chunk_size: int):
    pairs = [pipe_pair() for _ in range(n_streams)]
    tx_ends = [p[0] for p in pairs]
    rx_ends = [p[1] for p in pairs]
    result = {}

    def send():
        result["stats"] = send_striped(tx_ends, data, chunk_size, CFG)

    t = threading.Thread(target=send, daemon=True)
    t.start()
    got = receive_striped(rx_ends, CFG)
    t.join(timeout=60)
    assert not t.is_alive(), "striped sender hung"
    return got, result["stats"]


class TestRoundTrip:
    @pytest.mark.parametrize("n_streams", [1, 2, 4])
    def test_ascii(self, n_streams):
        data = ascii_data(500_000, seed=1)
        got, stats = striped_roundtrip(data, n_streams, chunk_size=64 * 1024)
        assert got == data
        assert stats.streams == n_streams
        assert stats.payload_bytes == len(data)

    def test_binary_and_random(self):
        for gen in (binary_data, incompressible_data):
            data = gen(300_000, seed=2)
            got, _ = striped_roundtrip(data, 3, chunk_size=32 * 1024)
            assert got == data

    def test_uneven_tail_chunk(self):
        # Payload not a multiple of the chunk size nor the stream count.
        data = ascii_data(100_001, seed=3)
        got, _ = striped_roundtrip(data, 3, chunk_size=7_000)
        assert got == data

    def test_payload_smaller_than_one_chunk(self):
        data = b"tiny"
        got, stats = striped_roundtrip(data, 4, chunk_size=64 * 1024)
        assert got == data
        assert stats.payload_bytes == 4

    def test_empty_payload(self):
        got, stats = striped_roundtrip(b"", 2, chunk_size=1024)
        assert got == b""
        assert stats.payload_bytes == 0

    def test_compression_accounting(self):
        data = ascii_data(800_000, seed=4)
        _, stats = striped_roundtrip(data, 2, chunk_size=200 * 1024)
        assert 0 < stats.wire_bytes
        assert stats.compression_ratio > 1.0

    def test_file_payload(self):
        # A seekable file stripes positionally: each stream reads only
        # its own chunks, so the payload is never resident in full.
        import io

        data = ascii_data(400_000, seed=5)
        got, stats = striped_roundtrip(io.BytesIO(data), 3, chunk_size=48 * 1024)
        assert got == data
        assert stats.payload_bytes == len(data)

    def test_memoryview_payload(self):
        data = ascii_data(150_000, seed=6)
        got, _ = striped_roundtrip(memoryview(data), 2, chunk_size=32 * 1024)
        assert got == data


class TestValidation:
    def test_stream_count_mismatch_detected(self):
        pairs = [pipe_pair() for _ in range(3)]
        data = ascii_data(50_000, seed=5)

        def send():
            send_striped([p[0] for p in pairs], data, 16 * 1024, CFG)

        t = threading.Thread(target=send, daemon=True)
        t.start()
        with pytest.raises(ValueError, match="streams"):
            receive_striped([p[1] for p in pairs[:2]], CFG)
        t.join(timeout=10)

    def test_no_endpoints_rejected(self):
        with pytest.raises(ValueError):
            send_striped([], b"x")
        with pytest.raises(ValueError):
            receive_striped([])

    def test_bad_chunk_size_rejected(self):
        a, b = pipe_pair()
        with pytest.raises(ValueError):
            send_striped([a], b"x", chunk_size=0)
        a.close()
        b.close()


def test_striped_over_shaped_lan():
    """Striping across shaped links: correctness under real pacing."""
    data = binary_data(600_000, seed=6)
    pairs = [LAN100.make_pair(seed=i) for i in range(2)]
    result = {}

    def send():
        result["stats"] = send_striped([p[0] for p in pairs], data, 64 * 1024)

    t = threading.Thread(target=send, daemon=True)
    t.start()
    got = receive_striped([p[1] for p in pairs])
    t.join(timeout=120)
    assert got == data
