"""Static lock-order extraction, propagation, and cycle detection."""

from __future__ import annotations

from repro.analysis.callgraph import build_callgraph
from repro.analysis.lockorder import analyze_locks


def _analyze(*sources, runtime_edges=None):
    return analyze_locks(build_callgraph(list(sources)), runtime_edges=runtime_edges)


def test_intra_function_nesting_is_an_edge():
    la = _analyze(
        (
            "pkg/a.py",
            """
from repro.analysis.lockgraph import make_lock

class Box:
    def __init__(self):
        self._a = make_lock("Box.A")
        self._b = make_lock("Box.B")

    def both(self):
        with self._a:
            with self._b:
                pass
""",
        )
    )
    edges = {(s.split(".")[-1], d.split(".")[-1]) for s, d in la.graph.edges}
    assert ("_a", "_b") in edges


def test_interprocedural_nesting_is_an_edge():
    la = _analyze(
        (
            "pkg/a.py",
            """
from repro.analysis.lockgraph import make_lock

class Outer:
    def __init__(self):
        self._lock = make_lock("Outer.lock")
        self.inner = Inner()

    def go(self):
        with self._lock:
            self.inner.poke()

class Inner:
    def __init__(self):
        self._lock = make_lock("Inner.lock")

    def poke(self):
        with self._lock:
            pass
""",
        )
    )
    named = set(la.graph.runtime_named_edges())
    assert ("Outer.lock", "Inner.lock") in named


def test_seeded_lock_order_cycle_is_adoc113():
    la = _analyze(
        (
            "pkg/a.py",
            """
from repro.analysis.lockgraph import make_lock

class Pair:
    def __init__(self):
        self._a = make_lock("Pair.A")
        self._b = make_lock("Pair.B")

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass
""",
        )
    )
    rules = {f.rule for f in la.findings}
    assert "ADOC113" in rules
    [cycle_finding] = [f for f in la.findings if f.rule == "ADOC113"]
    assert "Pair.A" in cycle_finding.message and "Pair.B" in cycle_finding.message


def test_consistent_order_has_no_cycle_finding():
    la = _analyze(
        (
            "pkg/a.py",
            """
from repro.analysis.lockgraph import make_lock

class Pair:
    def __init__(self):
        self._a = make_lock("Pair.A")
        self._b = make_lock("Pair.B")

    def one(self):
        with self._a:
            with self._b:
                pass

    def two(self):
        with self._a:
            with self._b:
                pass
""",
        )
    )
    assert not [f for f in la.findings if f.rule == "ADOC113"]


def test_self_nesting_of_one_class_lock_is_not_a_cycle():
    # Two *instances* of the same class may nest legally (striping,
    # hand-over-hand); a static self-loop must not be reported.
    la = _analyze(
        (
            "pkg/a.py",
            """
from repro.analysis.lockgraph import make_lock

class Node:
    def __init__(self):
        self._lock = make_lock("Node.lock")

    def link(self, other):
        with self._lock:
            with other._lock:
                pass
""",
        )
    )
    assert not [f for f in la.findings if f.rule == "ADOC113"]


def test_adoc110_blocking_reachable_under_lock_fires():
    la = _analyze(
        (
            "pkg/a.py",
            """
from repro.analysis.lockgraph import make_lock

class Conn:
    def __init__(self, sock):
        self._lock = make_lock("Conn.lock")
        self.sock = sock

    def locked_send(self, data):
        with self._lock:
            self._flush(data)

    def _flush(self, data):
        self.sock.sendall(data)
""",
        )
    )
    [f] = [f for f in la.findings if f.rule == "ADOC110"]
    assert "_flush" in f.message and "sendall" in f.message


def test_adoc110_quiet_when_callee_does_not_block():
    la = _analyze(
        (
            "pkg/a.py",
            """
from repro.analysis.lockgraph import make_lock

class Conn:
    def __init__(self):
        self._lock = make_lock("Conn.lock")
        self.n = 0

    def bump(self):
        with self._lock:
            self._count()

    def _count(self):
        self.n += 1
""",
        )
    )
    assert not [f for f in la.findings if f.rule == "ADOC110"]


def test_thread_spawn_under_lock_does_not_propagate_holding():
    # Thread(target=...).start() under a lock runs the target on a NEW
    # thread that does not hold the lock; no ADOC110.
    la = _analyze(
        (
            "pkg/a.py",
            """
import threading
from repro.analysis.lockgraph import make_lock

class Spawner:
    def __init__(self, sock):
        self._lock = make_lock("Spawner.lock")
        self.sock = sock

    def go(self):
        with self._lock:
            t = threading.Thread(target=self._worker, name="w", daemon=True)
            t.start()

    def _worker(self):
        self.sock.sendall(b"x")
""",
        )
    )
    assert not [f for f in la.findings if f.rule == "ADOC110"]


def test_condition_maps_to_its_underlying_lock():
    la = _analyze(
        (
            "pkg/a.py",
            """
from repro.analysis.lockgraph import make_condition, make_lock

class Q:
    def __init__(self):
        self._lock = make_lock("Q.lock")
        self.not_empty = make_condition(self._lock, "Q.not_empty")
        self._journal = make_lock("Q.journal")

    def wait_then_log(self):
        with self.not_empty:
            with self._journal:
                pass
""",
        )
    )
    named = set(la.graph.runtime_named_edges())
    # The condition acquires its *underlying* lock, so the static edge
    # must be Q.lock -> Q.journal, not Q.not_empty -> Q.journal.
    assert ("Q.lock", "Q.journal") in named


def test_runtime_cross_validation_reports_untested_edges():
    src = (
        "pkg/a.py",
        """
from repro.analysis.lockgraph import make_lock

class Pair:
    def __init__(self):
        self._a = make_lock("Pair.A")
        self._b = make_lock("Pair.B")

    def nest(self):
        with self._a:
            with self._b:
                pass
""",
    )
    exercised = _analyze(src, runtime_edges={("Pair.A", "Pair.B")})
    assert exercised.notes == []

    untested = _analyze(src, runtime_edges=set())
    [note] = untested.notes
    assert note.rule == "ADOC114"
    assert "Pair.A" in note.message and "Pair.B" in note.message


def test_no_runtime_export_means_no_notes():
    la = _analyze(
        (
            "pkg/a.py",
            """
from repro.analysis.lockgraph import make_lock

class Pair:
    def __init__(self):
        self._a = make_lock("Pair.A")
        self._b = make_lock("Pair.B")

    def nest(self):
        with self._a:
            with self._b:
                pass
""",
        )
    )
    assert la.notes == []
