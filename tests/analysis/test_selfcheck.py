"""`adoc check` applied to this repository's own source tree.

The analyzer eats its own dogfood: the tree must be clean (every true
finding fixed, every accepted one suppressed inline with a written
justification), and the suppression debt is pinned so it can only
shrink deliberately.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.checker import run_check
from repro.analysis.linter import iter_python_files

_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _sources():
    return [
        (str(p), p.read_text(encoding="utf-8"))
        for p in iter_python_files([str(_SRC)])
    ]


def test_src_repro_is_clean_under_adoc_check():
    report = run_check(_sources())
    assert report.files_checked > 50
    assert report.functions_resolved > 500
    rendered = report.render(verbose=True)
    assert report.findings == [], f"adoc check regressions:\n{rendered}"
    assert report.exit_code == 0


def test_suppression_debt_only_shrinks_deliberately():
    report = run_check(_sources())
    suppressed_rules = {f.rule for f in report.suppressed}
    # ADOC115 joined the pin with the reactor core: its sanctioned
    # leaves are the O_NONBLOCK endpoint ops in serve/channel.py, the
    # non-blocking accept in serve/server.py, and the self-pipe wakeup
    # write in serve/reactor.py — non-blocking by construction, exactly
    # the justified-leaf shape the rule's suppression syntax exists for.
    assert suppressed_rules <= {"ADOC110", "ADOC111", "ADOC115"}, (
        "new suppressed rule category — extend this pin only with a "
        f"written justification: {sorted(suppressed_rules)}"
    )
    # 20 accepted-by-design sites as of this PR (12 pre-reactor + the
    # reactor core's sanctioned non-blocking leaves, each counted once
    # per rule that prunes through it); update alongside any new inline
    # suppression so debt growth is visible in review.
    assert len(report.suppressed) <= 20, report.render(verbose=True)
