"""Cross-module struct.Struct symmetry (ADOC107 and friends)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.checker import run_check
from repro.analysis.linter import lint_sources

_SRC = Path(__file__).resolve().parents[2] / "src"


def _wire(report):
    return [f for f in (report.findings + report.suppressed) if f.rule == "ADOC107"]


def test_pack_without_any_unpack_still_fires():
    report = lint_sources(
        [
            (
                "pkg/a.py",
                """
import struct

_HDR = struct.Struct(">HQ")

def send(ep, idx, k):
    ep.sendall(_HDR.pack(idx, k))
""",
            )
        ]
    )
    [f] = _wire(report)
    assert ">HQ" in f.message


def test_alias_packed_here_unpacked_in_importing_module_is_clean():
    report = lint_sources(
        [
            (
                "pkg/wire.py",
                """
import struct

HDR = struct.Struct(">HQ")

def send(ep, idx, k):
    ep.sendall(HDR.pack(idx, k))
""",
            ),
            (
                "pkg/reader.py",
                """
from pkg.wire import HDR

def read(raw):
    return HDR.unpack(raw)
""",
            ),
        ]
    )
    assert _wire(report) == []


def test_import_chain_re_export_resolves():
    report = lint_sources(
        [
            (
                "pkg/wire.py",
                "import struct\n\nHDR = struct.Struct(\">HQ\")\n\n"
                "def send(ep, i, k):\n    ep.sendall(HDR.pack(i, k))\n",
            ),
            ("pkg/api.py", "from pkg.wire import HDR\n"),
            (
                "pkg/reader.py",
                "from pkg.api import HDR\n\ndef read(raw):\n    return HDR.unpack(raw)\n",
            ),
        ]
    )
    assert _wire(report) == []


def test_duplicate_wire_definitions_same_format_are_flagged():
    # Two independently-defined Structs with the same format string are
    # a drift hazard: editing one silently desynchronises the wire.
    report = lint_sources(
        [
            (
                "pkg/sender.py",
                "import struct\n\n_HDR = struct.Struct(\">HQ\")\n\n"
                "def send(ep, i, k):\n    ep.sendall(_HDR.pack(i, k))\n",
            ),
            (
                "pkg/reader.py",
                "import struct\n\n_HDR = struct.Struct(\">HQ\")\n\n"
                "def read(raw):\n    return _HDR.unpack(raw)\n",
            ),
        ]
    )
    [f] = _wire(report)
    assert "duplicate wire definitions" in f.message


def test_alias_from_unlisted_external_module_is_skipped():
    # The import target is outside the analyzed set; symmetric-or-not is
    # unknowable, so the checker stays quiet rather than guessing.
    report = lint_sources(
        [
            (
                "pkg/a.py",
                """
from elsewhere.wire import HDR

def send(ep, i, k):
    ep.sendall(HDR.pack(i, k))
""",
            )
        ]
    )
    assert _wire(report) == []


def test_literal_format_pack_matches_alias_unpack():
    report = lint_sources(
        [
            (
                "pkg/a.py",
                """
import struct

HDR = struct.Struct(">HQ")

def send(ep, i, k):
    ep.sendall(struct.pack(">HQ", i, k))

def read(raw):
    return HDR.unpack(raw)
""",
            )
        ]
    )
    assert _wire(report) == []


def test_striped_resume_header_regression():
    # `mover/striped.py` packs the `>HQ` _RESUME header in one function
    # and unpacks it in another; the check must follow the module-level
    # Struct alias rather than report a pack-only asymmetry.
    path = _SRC / "repro" / "mover" / "striped.py"
    report = run_check([(str(path), path.read_text(encoding="utf-8"))])
    resume = [f for f in report.findings if ">HQ" in f.message]
    assert resume == []
