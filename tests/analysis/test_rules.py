"""Positive/negative fixtures for every adoclint rule.

Each rule gets at least one seeded violation (the rule must fire) and
one compliant variant (the rule must stay quiet) — the acceptance bar
for the analyzer is that the *shape* of the violation is detected, not
the exact program.
"""

from __future__ import annotations

import textwrap

from repro.analysis import lint_sources


def lint(source: str, path: str = "fixture.py"):
    return lint_sources([(path, textwrap.dedent(source))])


def fired(source: str) -> set[str]:
    return {f.rule for f in lint(source).findings}


# -- ADOC101: blocking call under a lock -----------------------------------


def test_adoc101_socket_send_under_lock_fires():
    src = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()

            def poke(self, sock):
                with self._lock:
                    sock.sendall(b"x")
    """
    assert "ADOC101" in fired(src)


def test_adoc101_sleep_and_compress_under_lock_fire():
    src = """
        import threading, time, zlib

        lock = threading.Lock()

        def slowpath(data):
            with lock:
                time.sleep(0.1)
                return zlib.compress(data)
    """
    report = lint(src)
    assert sum(f.rule == "ADOC101" for f in report.findings) == 2


def test_adoc101_queue_put_under_lock_fires_but_dict_get_does_not():
    src = """
        import threading

        class Box:
            def __init__(self, queue):
                self._lock = threading.Lock()
                self._queue = queue
                self.files = {}

            def bad(self, item):
                with self._lock:
                    self._queue.put(item)

            def fine(self, key):
                with self._lock:
                    return self.files.get(key)
    """
    report = lint(src)
    assert sum(f.rule == "ADOC101" for f in report.findings) == 1


def test_adoc101_io_outside_lock_is_clean():
    src = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()

            def poke(self, sock):
                with self._lock:
                    payload = self.buf
                sock.sendall(payload)
    """
    assert "ADOC101" not in fired(src)


def test_adoc101_nested_def_inside_with_is_clean():
    # The nested function runs later, lock-free.
    src = """
        import threading

        lock = threading.Lock()

        def make(sock):
            with lock:
                def sender():
                    sock.sendall(b"x")
                return sender
    """
    assert "ADOC101" not in fired(src)


# -- ADOC102: wait() must sit in a while loop ------------------------------


def test_adoc102_if_guarded_wait_fires():
    src = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._ready = threading.Condition(self._lock)
                self.items = []

            def take(self):
                with self._lock:
                    if not self.items:
                        self._ready.wait()
                    return self.items.pop()
    """
    assert "ADOC102" in fired(src)


def test_adoc102_while_guarded_wait_is_clean():
    src = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._ready = threading.Condition(self._lock)
                self.items = []

            def take(self):
                with self._lock:
                    while not self.items:
                        self._ready.wait()
                    return self.items.pop()
    """
    assert "ADOC102" not in fired(src)


def test_adoc102_event_wait_is_not_a_condition_wait():
    src = """
        import threading

        done = threading.Event()

        def block():
            done.wait(timeout=5)
    """
    assert "ADOC102" not in fired(src)


# -- ADOC103: notify under the owning lock ---------------------------------


def test_adoc103_notify_outside_lock_fires():
    src = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._ready = threading.Condition(self._lock)

            def close(self):
                self._closed = True
                self._ready.notify_all()
    """
    assert "ADOC103" in fired(src)


def test_adoc103_notify_under_lock_is_clean():
    src = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._ready = threading.Condition(self._lock)

            def close(self):
                with self._lock:
                    self._closed = True
                    self._ready.notify_all()
    """
    assert "ADOC103" not in fired(src)


# -- ADOC104/ADOC105: Thread construction hygiene --------------------------


def test_adoc104_anonymous_thread_fires():
    src = """
        import threading

        def go(fn):
            threading.Thread(target=fn, daemon=True).start()
    """
    assert "ADOC104" in fired(src)


def test_adoc105_no_daemon_no_join_fires():
    src = """
        import threading

        def go(fn):
            threading.Thread(target=fn, name="worker").start()
    """
    assert "ADOC105" in fired(src)


def test_adoc105_joined_thread_is_clean():
    src = """
        import threading

        def go(fn):
            t = threading.Thread(target=fn, name="worker")
            t.start()
            t.join()
    """
    assert fired(src) == set()


def test_named_daemon_thread_is_clean():
    src = """
        import threading

        def go(fn):
            threading.Thread(target=fn, name="worker", daemon=True).start()
    """
    assert fired(src) == set()


# -- ADOC106: thread bodies must record exceptions -------------------------


def test_adoc106_swallowed_exception_fires():
    src = """
        import threading

        def worker():
            try:
                do_work()
            except Exception:
                pass

        threading.Thread(target=worker, name="w", daemon=True).start()
    """
    assert "ADOC106" in fired(src)


def test_adoc106_recorded_exception_is_clean():
    src = """
        import threading

        errors = []

        def worker():
            try:
                do_work()
            except Exception as exc:
                errors.append(exc)

        threading.Thread(target=worker, name="w", daemon=True).start()
    """
    assert "ADOC106" not in fired(src)


def test_adoc106_narrow_except_is_a_decision_not_a_violation():
    src = """
        import threading

        def worker():
            try:
                do_work()
            except KeyError:
                pass

        threading.Thread(target=worker, name="w", daemon=True).start()
    """
    assert "ADOC106" not in fired(src)


def test_adoc106_ignores_non_thread_functions():
    src = """
        def helper():
            try:
                do_work()
            except Exception:
                pass
    """
    assert "ADOC106" not in fired(src)


# -- ADOC107: struct pack/unpack symmetry ----------------------------------


def test_adoc107_pack_without_unpack_fires():
    src = """
        import struct

        def frame(n):
            return struct.pack(">HH", n, n)
    """
    assert "ADOC107" in fired(src)


def test_adoc107_struct_alias_roundtrip_is_clean():
    src = """
        import struct

        _HDR = struct.Struct(">BI")

        def frame(level, size):
            return _HDR.pack(level, size)

        def parse(data):
            return _HDR.unpack(data)
    """
    assert "ADOC107" not in fired(src)


def test_adoc107_cross_file_unpack_counts():
    sender = """
        import struct

        def frame(n):
            return struct.pack(">Q", n)
    """
    receiver = """
        import struct

        def parse(data):
            return struct.unpack(">Q", data)
    """
    report = lint_sources(
        [
            ("sender.py", textwrap.dedent(sender)),
            ("receiver.py", textwrap.dedent(receiver)),
        ]
    )
    assert {f.rule for f in report.findings} == set()


def test_adoc107_mismatched_formats_fire():
    sender = "import struct\n\ndef f(n):\n    return struct.pack('>HH', n, n)\n"
    receiver = "import struct\n\ndef g(d):\n    return struct.unpack('>I', d)\n"
    report = lint_sources([("s.py", sender), ("r.py", receiver)])
    assert {f.rule for f in report.findings} == {"ADOC107"}


# -- ADOC108: whole-payload copies on the hot path -------------------------

CORE_PATH = "src/repro/core/fixture.py"


def test_adoc108_bytes_of_payload_in_core_fires():
    src = """
        def emit(endpoint, payload):
            endpoint.send(bytes(payload))
    """
    assert "ADOC108" in {f.rule for f in lint(src, path=CORE_PATH).findings}


def test_adoc108_bytes_of_attribute_payload_fires():
    src = """
        def emit(endpoint, record):
            endpoint.send(bytes(record.payload))
    """
    assert "ADOC108" in {f.rule for f in lint(src, path=CORE_PATH).findings}


def test_adoc108_empty_bytes_join_fires():
    src = """
        def frame(parts):
            return b"".join(parts)
    """
    assert "ADOC108" in {f.rule for f in lint(src, path=CORE_PATH).findings}


def test_adoc108_non_payloadish_bytes_is_clean():
    src = """
        def widen(count):
            return bytes(count)
    """
    assert "ADOC108" not in {f.rule for f in lint(src, path=CORE_PATH).findings}


def test_adoc108_outside_core_is_exempt():
    src = """
        def emit(endpoint, payload):
            endpoint.send(bytes(payload))
            return b"".join([payload])
    """
    for path in ("src/repro/gridftp/fixture.py", "tests/fixture.py", "benchmarks/fixture.py"):
        assert "ADOC108" not in {f.rule for f in lint(src, path=path).findings}


def test_adoc108_justified_suppression_is_honored():
    src = """
        def reassemble(parts):
            return b"".join(parts)  # adoclint: disable=ADOC108 -- caller asked for bytes
    """
    report = lint(src, path=CORE_PATH)
    assert "ADOC108" not in {f.rule for f in report.findings}
    assert "ADOC108" in {f.rule for f in report.suppressed}


# -- suppressions (ADOC100) ------------------------------------------------


def test_justified_suppression_silences_the_finding():
    src = """
        import threading

        def go(fn):
            threading.Thread(target=fn, daemon=True).start()  # adoclint: disable=ADOC104 -- ephemeral probe thread, named by its pool
    """
    report = lint(src)
    assert report.findings == []
    assert [f.rule for f in report.suppressed] == ["ADOC104"]


def test_unjustified_suppression_earns_adoc100():
    src = """
        import threading

        def go(fn):
            threading.Thread(target=fn, daemon=True).start()  # adoclint: disable=ADOC104
    """
    report = lint(src)
    assert [f.rule for f in report.findings] == ["ADOC100"]
    assert [f.rule for f in report.suppressed] == ["ADOC104"]


def test_unknown_rule_in_suppression_earns_adoc100():
    src = """
        x = 1  # adoclint: disable=ADOC999 -- no such rule
    """
    assert fired(src) == {"ADOC100"}


def test_report_renders_location_and_rule():
    src = """
        import threading

        def go(fn):
            threading.Thread(target=fn, daemon=True).start()
    """
    report = lint(src, path="pkg/mod.py")
    line = report.render().splitlines()[0]
    assert line.startswith("pkg/mod.py:5:") and "ADOC104" in line


# -- ADOC109: unregistered locks in obs/ ------------------------------------


def test_adoc109_bare_lock_in_obs_fires():
    src = """
        import threading

        _lock = threading.Lock()
    """
    report = lint(src, path="src/repro/obs/metrics.py")
    assert [f.rule for f in report.findings] == ["ADOC109"]


def test_adoc109_condition_in_obs_fires_with_make_condition_hint():
    src = """
        import threading

        cond = threading.Condition()
    """
    report = lint(src, path="src/repro/obs/tracer.py")
    assert [f.rule for f in report.findings] == ["ADOC109"]
    assert "make_condition" in report.findings[0].message


def test_adoc109_make_lock_in_obs_is_quiet():
    src = """
        from repro.analysis.lockgraph import make_lock

        _lock = make_lock("obs.registry")
    """
    report = lint(src, path="src/repro/obs/metrics.py")
    assert report.findings == []


def test_adoc109_bare_lock_outside_obs_is_quiet():
    src = """
        import threading

        _lock = threading.Lock()
    """
    report = lint(src, path="src/repro/transport/faults.py")
    assert "ADOC109" not in {f.rule for f in report.findings}
