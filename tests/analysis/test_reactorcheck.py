"""ADOC115: blocking work reachable from reactor callbacks."""

from __future__ import annotations

from repro.analysis.checker import run_check

_REGISTERED_CALLBACK = (
    "pkg/direct.py",
    """
class Handler:
    def __init__(self, reactor, sock):
        self.sock = sock
        reactor.register(sock, 1, self._on_readable)

    def _on_readable(self, mask):
        return self.sock.recv(4096)
""",
)

_INDIRECT_CHAIN = (
    "pkg/indirect.py",
    """
import zlib


class Session:
    def __init__(self, reactor):
        reactor.call_later(0.1, self._tick)

    def _tick(self):
        self._flush()

    def _flush(self):
        data = self._pack()
        return zlib.compress(data)

    def _pack(self):
        return b"x"
""",
)

_HOOK_ASSIGNMENT = (
    "pkg/hook.py",
    """
import time


class Wiring:
    def attach(self, channel, session):
        channel.on_data = session.feed


class Session:
    def feed(self, data):
        time.sleep(1.0)
""",
)

_HOOK_ARGUMENT = (
    "pkg/hookarg.py",
    """
class Assembler:
    def __init__(self, on_message):
        self._cb = on_message


class Conn:
    def __init__(self, queue):
        self.queue = queue
        self.assembler = Assembler(self._on_message)

    def _on_message(self, msg):
        return self.queue.get()
""",
)

_TIMED_WAITS_ARE_FINE = (
    "pkg/timed.py",
    """
class Handler:
    def __init__(self, reactor, sock, queue):
        self.queue = queue
        reactor.call_soon(self._drain)

    def _drain(self):
        return self.queue.get(timeout=1.0)
""",
)

_POOL_HANDOFF_IS_SANCTIONED = (
    "pkg/pooled.py",
    """
import zlib


class Conn:
    def __init__(self, reactor, pool):
        self.pool = pool
        reactor.call_soon(self._pump)

    def _pump(self):
        self.pool.try_submit(self._compress_job, b"x")

    def _compress_job(self, data):
        return zlib.compress(data)
""",
)


def _rules(report):
    return [f for f in report.findings if f.rule == "ADOC115"]


def test_blocking_recv_in_registered_callback_is_flagged_at_the_leaf():
    report = run_check([_REGISTERED_CALLBACK])
    found = _rules(report)
    assert len(found) == 1
    assert found[0].line == 8  # the recv call, not the register site
    assert "recv" in found[0].message
    assert "_on_readable" in found[0].message


def test_indirect_blocking_through_a_call_chain_is_flagged():
    report = run_check([_INDIRECT_CHAIN])
    found = _rules(report)
    assert len(found) == 1
    assert "compress" in found[0].message
    assert "Session._tick" in found[0].message
    assert "Session._flush" in found[0].message  # the path chain


def test_on_attribute_assignment_wires_a_root():
    report = run_check([_HOOK_ASSIGNMENT])
    found = _rules(report)
    assert len(found) == 1
    assert "sleep" in found[0].message


def test_on_named_ctor_argument_wires_a_root():
    report = run_check([_HOOK_ARGUMENT])
    found = _rules(report)
    assert len(found) == 1
    assert "get" in found[0].message


def test_timed_queue_get_is_not_blocking():
    assert _rules(run_check([_TIMED_WAITS_ARE_FINE])) == []


def test_worker_pool_handoff_is_the_sanctioned_escape():
    # _compress_job runs on a worker thread: the submit call creates no
    # synchronous call edge, so the compress inside it is fine.
    assert _rules(run_check([_POOL_HANDOFF_IS_SANCTIONED])) == []


def test_leaf_suppression_moves_the_finding_to_suppressed():
    path, text = _REGISTERED_CALLBACK
    text = text.replace(
        "return self.sock.recv(4096)",
        "return self.sock.recv(4096)  # adoclint: disable=ADOC115 -- "
        "socket is O_NONBLOCK by construction",
    )
    report = run_check([(path, text)])
    assert "ADOC115" not in {f.rule for f in report.findings}
    assert "ADOC115" in {f.rule for f in report.suppressed}


def test_one_leaf_yields_one_finding_across_many_roots():
    # Two callbacks reach the same blocking helper; the finding
    # deduplicates on the leaf line.
    source = (
        "pkg/shared.py",
        """
class Conn:
    def __init__(self, reactor, sock):
        self.sock = sock
        reactor.register(sock, 1, self._on_readable)
        reactor.call_soon(self._kick)

    def _on_readable(self, mask):
        self._pump()

    def _kick(self):
        self._pump()

    def _pump(self):
        self.sock.sendall(b"x")
""",
    )
    found = _rules(run_check([source]))
    assert len(found) == 1
    assert "sendall" in found[0].message
