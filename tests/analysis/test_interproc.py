"""Deadline-propagation (ADOC111) and thread-lifecycle (ADOC112) proofs."""

from __future__ import annotations

from repro.analysis.callgraph import build_callgraph
from repro.analysis.interproc import (
    check_deadline_propagation,
    check_thread_lifecycles,
)


def _deadlines(*sources):
    return check_deadline_propagation(build_callgraph(list(sources)))


def _threads(*sources):
    return check_thread_lifecycles(build_callgraph(list(sources)))


# ---------------------------------------------------------------------------
# ADOC111 — deadline propagation
# ---------------------------------------------------------------------------


def test_seeded_unbounded_blocking_path_fires_adoc111():
    findings = _deadlines(
        (
            "pkg/a.py",
            """
__all__ = ["fetch"]

def fetch(sock):
    return _pull(sock)

def _pull(sock):
    return sock.recv(4096)
""",
        )
    )
    [f] = [f for f in findings if f.rule == "ADOC111"]
    assert "fetch" in f.message and "recv" in f.message
    # Anchored at the public entry so the fix lands on the API surface.
    assert f.line == 4


def test_bounded_path_is_clean():
    findings = _deadlines(
        (
            "pkg/a.py",
            """
__all__ = ["fetch"]

def fetch(sock, io_timeout_s=30.0):
    sock.settimeout(io_timeout_s)
    return _pull(sock)

def _pull(sock):
    return sock.recv(4096)
""",
        )
    )
    assert not [f for f in findings if f.rule == "ADOC111"]


def test_deadline_object_on_path_is_a_bound():
    findings = _deadlines(
        (
            "pkg/a.py",
            """
__all__ = ["fetch"]

from repro.transport.base import Deadline

def fetch(sock):
    dl = Deadline(30.0)
    return _pull(sock, dl)

def _pull(sock, dl):
    return sock.recv(4096)
""",
        )
    )
    assert not [f for f in findings if f.rule == "ADOC111"]


def test_private_helpers_are_not_entry_points():
    findings = _deadlines(
        (
            "pkg/a.py",
            """
__all__ = []

def _internal(sock):
    return sock.recv(4096)
""",
        )
    )
    assert not [f for f in findings if f.rule == "ADOC111"]


def test_blocking_reachable_only_via_thread_edge_still_fires():
    # The spawned worker runs on the public API's behalf; an unbounded
    # recv there hangs the transfer just the same.
    findings = _deadlines(
        (
            "pkg/a.py",
            """
import threading

__all__ = ["start_pump"]

def start_pump(sock):
    t = threading.Thread(target=_pump, args=(sock,), name="pump")
    t.start()
    return t

def _pump(sock):
    sock.recv(4096)
""",
        )
    )
    [f] = [f for f in findings if f.rule == "ADOC111"]
    assert "_pump" in f.message


def test_generator_send_is_not_a_transport_op():
    findings = _deadlines(
        (
            "pkg/a.py",
            """
__all__ = ["drive"]

def drive(gen):
    return gen.send(None)
""",
        )
    )
    assert not [f for f in findings if f.rule == "ADOC111"]


def test_public_method_of_dunder_all_class_is_an_entry():
    findings = _deadlines(
        (
            "pkg/a.py",
            """
__all__ = ["Client"]

class Client:
    def __init__(self, sock):
        self.sock = sock

    def read(self):
        return self.sock.recv(4096)

    def _private(self):
        return self.sock.recv(4096)
""",
        )
    )
    entries = {f.message.split("'")[1] for f in findings if f.rule == "ADOC111"}
    assert "Client.read" in entries
    assert all("_private" not in e for e in entries)


# ---------------------------------------------------------------------------
# ADOC112 — thread lifecycle
# ---------------------------------------------------------------------------


def test_seeded_leaked_thread_fires_adoc112():
    findings = _threads(
        (
            "pkg/a.py",
            """
import threading

class Pump:
    def start(self):
        self._worker = threading.Thread(target=self._run, name="pump")
        self._worker.start()

    def _run(self):
        pass
""",
        )
    )
    [f] = [f for f in findings if f.rule == "ADOC112"]
    assert "Pump.start" in f.message and "never joined" in f.message


def test_join_in_same_function_is_clean():
    findings = _threads(
        (
            "pkg/a.py",
            """
import threading

def run_once():
    t = threading.Thread(target=print, name="once")
    t.start()
    t.join(timeout=5.0)
""",
        )
    )
    assert not [f for f in findings if f.rule == "ADOC112"]


def test_join_in_sibling_method_is_shutdown_evidence():
    findings = _threads(
        (
            "pkg/a.py",
            """
import threading

class Pump:
    def start(self):
        self._worker = threading.Thread(target=self._run, name="pump")
        self._worker.start()

    def close(self):
        self._worker.join(timeout=5.0)

    def _run(self):
        pass
""",
        )
    )
    assert not [f for f in findings if f.rule == "ADOC112"]


def test_join_in_direct_caller_is_shutdown_evidence():
    findings = _threads(
        (
            "pkg/a.py",
            """
import threading

def _spawn():
    t = threading.Thread(target=print, name="w")
    t.start()
    return t

def run():
    t = _spawn()
    t.join(timeout=5.0)
""",
        )
    )
    assert not [f for f in findings if f.rule == "ADOC112"]


def test_thread_list_with_reap_threads_is_clean():
    findings = _threads(
        (
            "pkg/a.py",
            """
import threading

class Pool:
    def __init__(self):
        self._threads = []

    def spawn(self):
        t = threading.Thread(target=print, name="w")
        t.start()
        self._threads.append(t)

    def close(self):
        reap_threads(self._threads, timeout=5.0)

def reap_threads(threads, timeout):
    for t in threads:
        t.join(timeout=timeout)
""",
        )
    )
    assert not [f for f in findings if f.rule == "ADOC112"]
