"""Runtime lock-order detector tests.

These use private :class:`LockGraph` instances rather than the global
one, so they neither depend on nor pollute whatever the rest of the
suite records when ``REPRO_LOCKCHECK=1``.
"""

from __future__ import annotations

import threading
import time

from repro.analysis.lockgraph import (
    CheckedCondition,
    CheckedLock,
    LockGraph,
    LockOrderError,
    make_condition,
    make_lock,
)
import pytest


def test_consistent_order_has_no_cycles():
    g = LockGraph()
    a = CheckedLock("A", g)
    b = CheckedLock("B", g)
    for _ in range(3):
        with a:
            with b:
                pass
    assert [(e.src, e.dst) for e in g.edges()] == [("A", "B")]
    assert g.find_cycles() == []
    g.assert_clean()


def test_order_inversion_is_a_cycle():
    g = LockGraph()
    a = CheckedLock("A", g)
    b = CheckedLock("B", g)
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    cycles = g.find_cycles()
    assert cycles == [["A", "B"]]
    with pytest.raises(LockOrderError, match="A -> B -> A"):
        g.assert_clean()


def test_cross_thread_inversion_is_detected():
    g = LockGraph()
    a = CheckedLock("A", g)
    b = CheckedLock("B", g)
    barrier = threading.Barrier(2)

    def locker(first: CheckedLock, second: CheckedLock) -> None:
        barrier.wait(timeout=5)
        with first:
            # Serialise the two bodies so the test cannot actually
            # deadlock; the ordering edge is recorded regardless.
            with serial:
                with second:
                    pass

    serial = threading.Lock()
    t1 = threading.Thread(target=locker, args=(a, b), name="t1")
    t2 = threading.Thread(target=locker, args=(b, a), name="t2")
    t1.start()
    t2.start()
    t1.join(timeout=10)
    t2.join(timeout=10)
    assert not t1.is_alive() and not t2.is_alive()
    assert g.find_cycles() == [["A", "B"]]


def test_same_instance_pair_never_self_cycles():
    # Two locks with the *same name* (two queues of one class) must not
    # alias: edges are keyed by instance.
    g = LockGraph()
    q1 = CheckedLock("PacketQueue.lock", g)
    q2 = CheckedLock("PacketQueue.lock", g)
    with q1:
        with q2:
            pass
    assert g.find_cycles() == []


def test_condition_wait_routes_through_checked_lock():
    g = LockGraph()
    lock = CheckedLock("Box.lock", g)
    cond = CheckedCondition(lock, "Box.ready")
    items: list[int] = []

    def producer() -> None:
        with lock:
            items.append(1)
            cond.notify_all()

    t = threading.Thread(target=producer, name="producer")
    with lock:
        t.start()
        while not items:
            assert cond.wait(timeout=5)
    t.join(timeout=5)
    assert items == [1]
    # wait() released and re-acquired through the wrapper: the stack is
    # balanced and no bogus edges appeared from a single-lock workload.
    assert g.edges() == []
    assert g.find_cycles() == []


def test_long_holds_and_waits_are_recorded():
    g = LockGraph(hold_threshold_s=0.01)
    lock = CheckedLock("slow.lock", g)
    with lock:
        time.sleep(0.05)
    assert [h.kind for h in g.long_holds] == ["hold"]
    assert g.long_holds[0].name == "slow.lock"
    assert g.long_holds[0].seconds >= 0.01

    cond = CheckedCondition(lock, "slow.ready")
    with lock:
        cond.wait(timeout=0.05)
    kinds = [h.kind for h in g.long_holds]
    assert "wait" in kinds


def test_nonblocking_acquire_adds_no_edge():
    g = LockGraph()
    a = CheckedLock("A", g)
    b = CheckedLock("B", g)
    with a:
        assert b.acquire(blocking=False)
        b.release()
    # try-acquires cannot deadlock, so they contribute no ordering edge.
    assert g.edges() == []


def test_reset_clears_state():
    g = LockGraph(hold_threshold_s=0.0)
    a = CheckedLock("A", g)
    b = CheckedLock("B", g)
    with a:
        with b:
            pass
    assert g.edges()
    g.reset()
    assert g.edges() == []
    assert g.long_holds == []


def test_report_names_edges_and_cycles():
    g = LockGraph()
    a = CheckedLock("A", g)
    b = CheckedLock("B", g)
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    report = g.report()
    assert "A -> B" in report
    assert "CYCLE: A -> B -> A" in report


def test_factories_follow_the_env_switch(monkeypatch):
    monkeypatch.delenv("REPRO_LOCKCHECK", raising=False)
    plain = make_lock("plain")
    assert not isinstance(plain, CheckedLock)
    assert type(make_condition(plain, "plain.cond")) is threading.Condition

    monkeypatch.setenv("REPRO_LOCKCHECK", "1")
    checked = make_lock("checked")
    assert isinstance(checked, CheckedLock)
    assert isinstance(make_condition(checked, "checked.cond"), CheckedCondition)

    monkeypatch.setenv("REPRO_LOCKCHECK", "0")
    assert not isinstance(make_lock("off"), CheckedLock)
