"""The shipped tree must pass its own linter."""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis import run_lint
from repro.analysis.__main__ import main as lint_main

PACKAGE_DIR = Path(repro.__file__).resolve().parent


def test_src_tree_lints_clean():
    report = run_lint([str(PACKAGE_DIR)])
    assert report.findings == [], report.render()
    assert report.exit_code == 0
    assert report.files_checked > 50


def test_every_suppression_in_tree_is_justified():
    # An unjustified suppression would surface as an ADOC100 finding and
    # fail the clean-tree test above; this asserts the inverse shape —
    # the suppressions that do exist were honoured, not just absent.
    report = run_lint([str(PACKAGE_DIR)])
    # ADOC103: WorkerPool._enqueue_locked notifies under the lock its
    # callers hold (the _locked-suffix contract) — invisible to the
    # per-function lint, hence the justified suppression.
    assert all(
        s.rule in {"ADOC101", "ADOC103", "ADOC106", "ADOC108"}
        for s in report.suppressed
    ), [s.render() for s in report.suppressed]


def test_cli_entry_point_exits_zero():
    assert lint_main([str(PACKAGE_DIR)]) == 0


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("ADOC100", "ADOC101", "ADOC107"):
        assert rule in out
