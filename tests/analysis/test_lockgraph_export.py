"""Runtime lockgraph export / import — the static↔runtime interchange."""

from __future__ import annotations

import json

import pytest

from repro.analysis.lockgraph import CheckedLock, LockGraph


def _nested(g, first, second, times=1):
    for _ in range(times):
        with first:
            with second:
                pass


def test_export_import_round_trip():
    g = LockGraph()
    a = CheckedLock("A", g)
    b = CheckedLock("B", g)
    _nested(g, a, b)

    doc = json.loads(json.dumps(g.to_json()))  # through a real JSON hop
    assert doc["version"] == LockGraph.EXPORT_VERSION
    assert LockGraph.from_export(doc) == {("A", "B")}


def test_from_export_rejects_unknown_version():
    with pytest.raises(ValueError):
        LockGraph.from_export({"version": 99, "edges": []})
    with pytest.raises(ValueError):
        LockGraph.from_export({"edges": []})


def test_export_aggregates_same_named_edges_and_sums_counts():
    # Two instance pairs sharing names (striping: per-stream locks named
    # after the class) collapse to one name-level edge with summed count.
    g = LockGraph()
    a1, b1 = CheckedLock("S.lock", g), CheckedLock("S.buf", g)
    a2, b2 = CheckedLock("S.lock", g), CheckedLock("S.buf", g)
    _nested(g, a1, b1, times=2)
    _nested(g, a2, b2, times=3)

    doc = g.to_json()
    [edge] = [e for e in doc["edges"] if (e["src"], e["dst"]) == ("S.lock", "S.buf")]
    assert edge["count"] == 5
    assert LockGraph.from_export(doc) == {("S.lock", "S.buf")}


def test_exported_cycles_match_golden_report():
    g = LockGraph()
    a = CheckedLock("A", g)
    b = CheckedLock("B", g)
    _nested(g, a, b)
    _nested(g, b, a)

    doc = g.to_json()
    assert doc["cycles"], "inverted acquisition order must export a cycle"
    [cycle] = doc["cycles"]
    assert set(cycle) >= {"A", "B"}

    # The human-readable report names the same cycle — golden contract
    # between the export consumed by `adoc check` and what a developer
    # sees in the REPRO_LOCKCHECK failure output.
    report = g.report()
    assert "A" in report and "B" in report
    assert "cycle" in report.lower()
