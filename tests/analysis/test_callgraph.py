"""Call-graph construction and name-resolution tests.

Fixtures are small synthetic modules passed as (path, source) pairs;
paths without a ``src`` marker become dotted module names verbatim
(``pkg/a.py`` -> ``pkg.a``), which keeps expectations readable.
"""

from __future__ import annotations

from repro.analysis.callgraph import build_callgraph, module_name_for_path


def test_module_name_for_path_strips_src_prefix():
    assert module_name_for_path("src/repro/core/fifo.py") == "repro.core.fifo"
    assert module_name_for_path("/abs/path/src/repro/cli.py") == "repro.cli"
    assert module_name_for_path("pkg/a.py") == "pkg.a"
    assert module_name_for_path("src/repro/gridftp/__init__.py") == "repro.gridftp"


def test_module_level_call_resolves():
    cg = build_callgraph(
        [
            (
                "pkg/a.py",
                """
def helper():
    pass

def caller():
    helper()
""",
            )
        ]
    )
    assert cg.callees("pkg.a.caller") == {"pkg.a.helper"}


def test_imported_name_call_resolves_across_modules():
    cg = build_callgraph(
        [
            ("pkg/a.py", "def helper():\n    pass\n"),
            (
                "pkg/b.py",
                """
from pkg.a import helper

def caller():
    helper()
""",
            ),
        ]
    )
    assert cg.callees("pkg.b.caller") == {"pkg.a.helper"}


def test_relative_import_call_resolves():
    cg = build_callgraph(
        [
            ("pkg/a.py", "def helper():\n    pass\n"),
            (
                "pkg/b.py",
                """
from .a import helper

def caller():
    helper()
""",
            ),
        ]
    )
    assert cg.callees("pkg.b.caller") == {"pkg.a.helper"}


def test_self_method_call_resolves_including_base_class():
    cg = build_callgraph(
        [
            (
                "pkg/a.py",
                """
class Base:
    def shared(self):
        pass

class Child(Base):
    def go(self):
        self.local()
        self.shared()

    def local(self):
        pass
""",
            )
        ]
    )
    assert cg.callees("pkg.a.Child.go") == {
        "pkg.a.Child.local",
        "pkg.a.Base.shared",
    }


def test_typed_receiver_via_constructor_assignment():
    cg = build_callgraph(
        [
            (
                "pkg/a.py",
                """
class Worker:
    def run(self):
        pass

def caller():
    w = Worker()
    w.run()
""",
            )
        ]
    )
    assert "pkg.a.Worker.run" in cg.callees("pkg.a.caller")


def test_unique_method_name_fallback_resolves_only_when_unambiguous():
    cg = build_callgraph(
        [
            (
                "pkg/a.py",
                """
class Only:
    def distinctive(self):
        pass

class A:
    def common(self):
        pass

class B:
    def common(self):
        pass

def caller(x, y):
    x.distinctive()
    y.common()
""",
            )
        ]
    )
    callees = cg.callees("pkg.a.caller")
    assert "pkg.a.Only.distinctive" in callees
    # Two classes define `common`: resolving either would be a guess.
    assert not any(c.endswith(".common") for c in callees)


def test_thread_target_is_a_thread_kind_edge():
    cg = build_callgraph(
        [
            (
                "pkg/a.py",
                """
import threading

def worker():
    pass

def spawner():
    t = threading.Thread(target=worker, name="w")
    t.start()
""",
            )
        ]
    )
    assert cg.callees("pkg.a.spawner", kinds=("call",)) == set()
    assert cg.callees("pkg.a.spawner", kinds=("thread",)) == {"pkg.a.worker"}


def test_constructor_call_resolves_to_init():
    cg = build_callgraph(
        [
            (
                "pkg/a.py",
                """
class Thing:
    def __init__(self):
        pass

def caller():
    Thing()
""",
            )
        ]
    )
    assert cg.callees("pkg.a.caller") == {"pkg.a.Thing.__init__"}


def test_reachable_walks_transitively():
    cg = build_callgraph(
        [
            (
                "pkg/a.py",
                """
def c():
    pass

def b():
    c()

def a():
    b()
""",
            )
        ]
    )
    assert cg.reachable(["pkg.a.a"]) == {"pkg.a.a", "pkg.a.b", "pkg.a.c"}


def test_shortest_path_finds_a_route():
    cg = build_callgraph(
        [
            (
                "pkg/a.py",
                """
def c():
    pass

def b():
    c()

def a():
    b()
""",
            )
        ]
    )
    assert cg.shortest_path("pkg.a.a", {"pkg.a.c"}) == [
        "pkg.a.a",
        "pkg.a.b",
        "pkg.a.c",
    ]
    assert cg.shortest_path("pkg.a.c", {"pkg.a.a"}) is None


def test_public_names_come_from_dunder_all():
    cg = build_callgraph(
        [
            (
                "pkg/a.py",
                """
__all__ = ["visible"]

def visible():
    pass

def hidden():
    pass
""",
            )
        ]
    )
    assert cg.modules["pkg.a"].public_names == {"visible"}
