"""End-to-end `adoc check`: report, suppressions, baseline, CLI contract."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.checker import main, run_check

_SEEDED = (
    "pkg/seeded.py",
    """
import threading
from repro.analysis.lockgraph import make_lock

__all__ = ["fetch"]


def fetch(sock):
    return sock.recv(4096)


class Pair:
    def __init__(self):
        self._a = make_lock("Pair.A")
        self._b = make_lock("Pair.B")

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass


class Pump:
    def start(self):
        self._worker = threading.Thread(target=print, name="pump")
        self._worker.start()
""",
)


def test_run_check_surfaces_all_three_seeded_defects():
    report = run_check([_SEEDED])
    rules = {f.rule for f in report.findings}
    assert {"ADOC111", "ADOC112", "ADOC113"} <= rules
    assert report.exit_code == 1


def test_inline_suppression_moves_finding_to_suppressed():
    path, text = _SEEDED
    text = text.replace(
        "    return sock.recv(4096)\n",
        "    return sock.recv(4096)"
        "  # adoclint: disable=ADOC111 -- caller owns the socket timeout\n",
        1,
    ).replace(
        "def fetch(sock):",
        "def fetch(sock):  # adoclint: disable=ADOC111 -- caller owns the socket timeout",
    )
    report = run_check([(path, text)])
    assert "ADOC111" not in {f.rule for f in report.findings}
    assert "ADOC111" in {f.rule for f in report.suppressed}


def test_comma_separated_suppression_list_in_check():
    # One comment carries lint + check rule ids; the check run honors
    # the one that fires here (ADOC111) and ignores the rest.
    report = run_check(
        [
            (
                "pkg/a.py",
                """
__all__ = ["poll"]


def poll(sock):  # adoclint: disable=ADOC101,ADOC111 -- fixed cadence probe; socket owned by caller
    return sock.recv(1)
""",
            )
        ]
    )
    assert report.findings == []
    assert {f.rule for f in report.suppressed} == {"ADOC111"}


def test_comma_separated_suppression_list_in_lint():
    from repro.analysis.linter import lint_sources

    # Thread() with no name= and no daemon=/join() raises ADOC104 and
    # ADOC105 on the same line; one comma list silences both.
    src = """
import threading


def spawn(fn):
    t = threading.Thread(target=fn)  # adoclint: disable=ADOC104,ADOC105 -- short-lived probe thread, reaped by the harness
    t.start()
    return t
"""
    report = lint_sources([("pkg/a.py", src)])
    assert {f.rule for f in report.findings} & {"ADOC104", "ADOC105"} == set()
    assert {f.rule for f in report.suppressed} >= {"ADOC104", "ADOC105"}


def test_baseline_round_trip(tmp_path):
    report = run_check([_SEEDED])
    assert report.findings

    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, report.findings)
    fingerprints = load_baseline(baseline_file)
    assert fingerprints == {fingerprint(f) for f in report.findings}

    rebaselined = run_check([_SEEDED], baseline_fingerprints=fingerprints)
    assert rebaselined.findings == []
    assert len(rebaselined.baselined) == len(report.findings)
    assert rebaselined.exit_code == 0


def test_baseline_is_line_shift_stable():
    report = run_check([_SEEDED])
    fingerprints = {fingerprint(f) for f in report.findings}

    path, text = _SEEDED
    shifted = run_check(
        [(path, "# a new leading comment\n# shifts every line down\n" + text)],
        baseline_fingerprints=fingerprints,
    )
    assert shifted.findings == []


def test_new_finding_is_not_masked_by_stale_baseline():
    live, baselined = apply_baseline(run_check([_SEEDED]).findings, {"feedcafe" * 2})
    assert baselined == []
    assert live


def test_load_baseline_rejects_unknown_version(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError):
        load_baseline(bad)


def _write_tree(tmp_path, text):
    src = tmp_path / "src" / "pkg"
    src.mkdir(parents=True)
    (src / "seeded.py").write_text(text)
    return str(src)


def test_main_exit_one_on_findings_and_zero_when_clean(tmp_path, capsys):
    root = _write_tree(tmp_path, _SEEDED[1])
    assert main([root]) == 1
    out = capsys.readouterr().out
    assert "ADOC113" in out

    clean = _write_tree(tmp_path / "clean", "def ok():\n    return 1\n")
    assert main([clean]) == 0


def test_main_internal_error_is_exit_two(tmp_path, capsys):
    bad_graph = tmp_path / "lockgraph.json"
    bad_graph.write_text(json.dumps({"version": 99, "edges": []}))
    clean = _write_tree(tmp_path, "def ok():\n    return 1\n")
    assert main([clean, "--lockgraph", str(bad_graph)]) == 2
    assert "internal error" in capsys.readouterr().err


def test_main_json_format_document(tmp_path, capsys):
    root = _write_tree(tmp_path, _SEEDED[1])
    assert main([root, "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["tool"] == "adoc-check"
    assert {f["rule"] for f in doc["findings"]} >= {"ADOC111", "ADOC113"}


def test_main_sarif_format_is_valid_2_1_0(tmp_path):
    root = _write_tree(tmp_path, _SEEDED[1])
    out = tmp_path / "check.sarif"
    assert main([root, "--format", "sarif", "--output", str(out)]) == 1
    doc = json.loads(out.read_text())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "adoc-check"
    results = run["results"]
    assert results, "expected SARIF results for the seeded defects"
    for r in results:
        assert r["partialFingerprints"]["adocFingerprint/v1"]
        loc = r["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] >= 1
        assert loc["region"]["startColumn"] >= 1


def test_main_update_baseline_then_clean(tmp_path, capsys):
    root = _write_tree(tmp_path, _SEEDED[1])
    baseline = tmp_path / "baseline.json"
    assert main([root, "--baseline", str(baseline), "--update-baseline"]) == 0
    capsys.readouterr()
    assert main([root, "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_notes_never_affect_the_exit_code():
    # An empty runtime export makes every static edge an ADOC114 note;
    # with no live findings the run must still pass.
    report = run_check(
        [
            (
                "pkg/a.py",
                """
from repro.analysis.lockgraph import make_lock

class Pair:
    def __init__(self):
        self._a = make_lock("Pair.A")
        self._b = make_lock("Pair.B")

    def nest(self):
        with self._a:
            with self._b:
                pass
""",
            )
        ],
        runtime_edges=set(),
    )
    assert report.findings == []
    assert [n.rule for n in report.notes] == ["ADOC114"]
    assert report.exit_code == 0
