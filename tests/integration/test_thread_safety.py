"""Thread safety (paper section 4.2).

The paper validates AdOC inside the Internet Backplane Protocol, which
drives the library from multiple threads concurrently.  These tests
reproduce that usage: several descriptor pairs used fully concurrently,
plus concurrent writers serialised on one descriptor.
"""

from __future__ import annotations

import threading

from repro.core import AdocConfig, AdocSocket, adoc_attach, adoc_close, adoc_read, adoc_write
from repro.data import ascii_data, binary_data
from repro.transport import pipe_pair

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
)


def test_many_connections_in_parallel():
    """IBP-style: N independent connections, each with its own threads."""
    n_conns = 6
    payloads = [binary_data(60_000, seed=i) for i in range(n_conns)]
    errors: list[BaseException] = []

    def run_one(i: int) -> None:
        try:
            a, b = pipe_pair()
            tx, rx = AdocSocket(a, CFG), AdocSocket(b, CFG)
            sender = threading.Thread(target=tx.write, args=(payloads[i],), daemon=True)
            sender.start()
            got = rx.read_exact(len(payloads[i]))
            sender.join(timeout=30)
            assert got == payloads[i], f"connection {i} corrupted"
            tx.close()
            rx.close()
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=run_one, args=(i,), daemon=True) for i in range(n_conns)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "connection worker hung"
    assert not errors, errors


def test_concurrent_writers_one_descriptor_serialised():
    """Multiple threads writing the same descriptor must interleave at
    message granularity (the per-connection write lock)."""
    a, b = pipe_pair()
    fd_tx = adoc_attach(a, CFG)
    fd_rx = adoc_attach(b, CFG)
    messages = {i: bytes([65 + i]) * 20_000 for i in range(5)}
    writers = [
        threading.Thread(target=adoc_write, args=(fd_tx, messages[i]), daemon=True)
        for i in messages
    ]
    for w in writers:
        w.start()
    total = sum(len(m) for m in messages.values())
    out = bytearray()
    while len(out) < total:
        chunk = adoc_read(fd_rx, total - len(out))
        assert chunk
        out += chunk
    for w in writers:
        w.join(timeout=30)
        assert not w.is_alive()
    # Messages are atomic: the stream is a permutation of whole messages.
    got = bytes(out)
    offset = 0
    seen = []
    while offset < total:
        marker = got[offset]
        assert got[offset : offset + 20_000] == bytes([marker]) * 20_000, (
            "messages interleaved mid-stream"
        )
        seen.append(marker)
        offset += 20_000
    assert sorted(seen) == [65, 66, 67, 68, 69]
    adoc_close(fd_tx)
    adoc_close(fd_rx)


def test_descriptor_table_concurrent_attach_close():
    """Attach/close races must never corrupt the table."""
    errors: list[BaseException] = []

    def churn() -> None:
        try:
            for _ in range(50):
                a, b = pipe_pair()
                fd1 = adoc_attach(a, CFG)
                fd2 = adoc_attach(b, CFG)
                adoc_close(fd1)
                adoc_close(fd2)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=churn, daemon=True) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive()
    assert not errors, errors
