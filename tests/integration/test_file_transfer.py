"""File transfer integration: the gridFTP-direction use case.

The paper's future work targets data movers (IBP, gridFTP).  These
tests move whole files — the synthetic bench files included — through
``adoc_send_file``/``adoc_receive_file`` over live links, including a
mover that ships several files sequentially over one connection.
"""

from __future__ import annotations

import io
import threading

import pytest

from repro.core import AdocConfig, AdocSocket
from repro.data import synthetic_hb_bytes, synthetic_tar_bytes
from repro.transport import LAN100, pipe_pair

CFG = AdocConfig(
    buffer_size=32 * 1024,
    packet_size=4 * 1024,
    slice_size=4 * 1024,
    small_message_threshold=16 * 1024,
    probe_size=8 * 1024,
    fast_network_bps=float("inf"),
)


@pytest.fixture(scope="module")
def bench_files():
    return {
        "oilpann.hb": synthetic_hb_bytes(n=1500, band=5, seed=1),
        "bin.tar": synthetic_tar_bytes(n_members=3, member_size=65536, seed=1),
    }


def test_send_receive_bench_files(bench_files):
    for name, data in bench_files.items():
        a, b = pipe_pair()
        tx, rx = AdocSocket(a, CFG), AdocSocket(b, CFG)
        res = {}
        t = threading.Thread(
            target=lambda: res.update(w=tx.send_file(io.BytesIO(data))), daemon=True
        )
        t.start()
        sink = io.BytesIO()
        stored = rx.receive_file(sink)
        t.join(timeout=60)
        size, slen = res["w"]
        assert stored == len(data) == size, name
        assert sink.getvalue() == data, name
        assert slen < size, f"{name} should compress"
        tx.close()
        rx.close()


def test_file_mover_many_files_one_connection(bench_files):
    """Sequential multi-file mover: message boundaries keep files apart."""
    files = [
        (f"file{i}", synthetic_hb_bytes(n=300 + 100 * i, band=3, seed=i))
        for i in range(4)
    ]
    a, b = pipe_pair()
    tx, rx = AdocSocket(a, CFG), AdocSocket(b, CFG)
    received: dict[str, bytes] = {}

    def mover() -> None:
        for _, data in files:
            tx.send_file(io.BytesIO(data))

    t = threading.Thread(target=mover, daemon=True)
    t.start()
    for name, data in files:
        sink = io.BytesIO()
        n = rx.receive_file(sink)
        assert n == len(data)
        received[name] = sink.getvalue()
    t.join(timeout=120)
    for name, data in files:
        assert received[name] == data
    tx.close()
    rx.close()


def test_file_transfer_over_shaped_lan(bench_files):
    data = bench_files["oilpann.hb"]
    a, b = LAN100.make_pair(seed=9)
    tx, rx = AdocSocket(a), AdocSocket(b)
    res = {}
    t = threading.Thread(
        target=lambda: res.update(w=tx.send_file(io.BytesIO(data))), daemon=True
    )
    t.start()
    sink = io.BytesIO()
    stored = rx.receive_file(sink)
    t.join(timeout=120)
    assert stored == len(data)
    assert sink.getvalue() == data
    tx.close()
    rx.close()


def test_disk_roundtrip(tmp_path, bench_files):
    """Actual files on disk, as a downstream user would move them."""
    src = tmp_path / "src.hb"
    dst = tmp_path / "dst.hb"
    src.write_bytes(bench_files["oilpann.hb"])
    a, b = pipe_pair()
    tx, rx = AdocSocket(a, CFG), AdocSocket(b, CFG)

    def send() -> None:
        with src.open("rb") as f:
            tx.send_file(f)

    t = threading.Thread(target=send, daemon=True)
    t.start()
    with dst.open("wb") as f:
        rx.receive_file(f)
    t.join(timeout=60)
    assert dst.read_bytes() == src.read_bytes()
    tx.close()
    rx.close()
