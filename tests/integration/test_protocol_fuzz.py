"""Wire-protocol fuzzing: corrupted streams never hang the receiver.

AdOC (like the original library) carries no integrity check of its own
— it trusts TCP's — so corruption of *raw payload* bytes is silently
passed through.  What the framing layer must guarantee is bounded
behaviour: any corruption of *framing or compressed* bytes either
raises a protocol/codec error or yields different bytes; it never
deadlocks the pipeline and never fabricates a successful longer read.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdocConfig, MessageSender, ReceiverPipeline
from repro.transport import pipe_pair
from repro.transport.base import sendall

CFG = AdocConfig(
    buffer_size=8 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=4 * 1024,
    probe_size=2 * 1024,
    fast_network_bps=float("inf"),
)


def capture_wire_bytes(data: bytes) -> bytes:
    """Record the exact wire bytes AdOC produces for ``data``."""

    class Recorder:
        def __init__(self):
            self.buf = bytearray()

        def send(self, chunk):
            self.buf += bytes(chunk)
            return len(chunk)

        def recv(self, n):  # pragma: no cover - sender never reads
            return b""

        def close(self):
            pass

        def shutdown_write(self):
            pass

    rec = Recorder()
    MessageSender(rec, CFG).send(data)
    return bytes(rec.buf)


def feed_receiver(wire: bytes, expected_len: int, timeout: float = 20.0):
    """Feed ``wire`` to a receiver; returns ('ok'|'error'|'eof', bytes)."""
    a, b = pipe_pair()
    receiver = ReceiverPipeline(b, CFG)

    def feed():
        try:
            sendall(a, wire)
        finally:
            a.close()

    feeder = threading.Thread(target=feed, daemon=True)
    feeder.start()
    out = bytearray()
    verdict = "ok"
    try:
        while len(out) < expected_len:
            chunk = receiver.read(expected_len - len(out))
            if not chunk:
                verdict = "eof"
                break
            out += chunk
    except Exception:
        verdict = "error"
    feeder.join(timeout=timeout)
    receiver.close()
    return verdict, bytes(out)


@settings(max_examples=25, deadline=None)
@given(
    flip_at=st.integers(min_value=0, max_value=10_000),
    xor=st.integers(min_value=1, max_value=255),
)
def test_single_byte_corruption_bounded(flip_at, xor):
    from repro.data import ascii_data

    data = ascii_data(20_000, seed=1)
    wire = bytearray(capture_wire_bytes(data))
    flip_at %= len(wire)
    wire[flip_at] ^= xor
    verdict, out = feed_receiver(bytes(wire), len(data))
    # Bounded behaviour: error, truncation, or byte-different output.
    if verdict == "ok" and out == data:
        # The flipped byte must have been neutral (e.g. inside a length
        # field high byte that wrapped to the same framing) — possible
        # only if the stream re-synchronised exactly; verify at least
        # that we didn't "succeed" by reading past the wire.
        assert len(out) == len(data)
    else:
        assert verdict in ("error", "eof") or out != data


@settings(max_examples=20, deadline=None)
@given(cut=st.integers(min_value=1, max_value=10_000))
def test_truncated_stream_never_hangs(cut):
    from repro.data import binary_data

    data = binary_data(15_000, seed=2)
    wire = capture_wire_bytes(data)
    cut %= len(wire)
    verdict, out = feed_receiver(wire[:cut], len(data))
    assert verdict in ("error", "eof")
    assert len(out) < len(data)


@settings(max_examples=20, deadline=None)
@given(junk=st.binary(min_size=1, max_size=512))
def test_pure_junk_never_hangs(junk):
    verdict, out = feed_receiver(junk, 1000)
    assert verdict in ("error", "eof")
