"""Smoke tests: every example script must run end to end.

Examples are documentation that executes; a refactor that breaks one
should fail the suite, not a reader.  Each runs as a subprocess with
arguments scaled down for test time.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", ["--size-mb", "0.8"], "app bandwidth"),
    ("file_mover.py", ["demo"], "all files verified identical"),
    ("netsolve_dgemm.py", ["--n", "96"], "dgemm over shaped"),
    ("adaptation_trace.py", ["--size-mb", "2"], "speedup"),
    ("image_thumbnails.py", ["--images", "2", "--size", "128"], "full fidelity"),
    ("gridftp_demo.py", ["--stripes", "1"], "verified byte-identical"),
]


@pytest.mark.parametrize("script,args,marker", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args, marker):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout, f"expected {marker!r} in output"
