"""Failure injection: transport faults must surface as errors, not hangs.

A real network connection can die at any byte.  These tests wrap
endpoints with fault injectors (fail after N bytes, corrupt a byte,
close mid-stream) and assert that both pipelines propagate clean errors
to their callers — the sender's write raises, the receiver's read
raises or EOFs — with no deadlocked thread left behind.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import AdocConfig, AdocSocket, MessageSender, ReceiverPipeline
from repro.core.packets import ProtocolError
from repro.data import ascii_data
from repro.transport import Endpoint, TransportClosed, pipe_pair

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
)


class FailingEndpoint(Endpoint):
    """Delegate that fails sends after a byte budget is exhausted."""

    def __init__(self, inner: Endpoint, fail_after_bytes: int) -> None:
        self.inner = inner
        self.remaining = fail_after_bytes

    def send(self, data):
        if self.remaining <= 0:
            raise TransportClosed("injected send failure")
        take = min(len(data), self.remaining)
        sent = self.inner.send(data[:take])
        self.remaining -= sent
        return sent

    def recv(self, n):
        return self.inner.recv(n)

    def close(self):
        self.inner.close()


class CorruptingEndpoint(Endpoint):
    """Delegate that flips one byte at a given stream offset (recv side)."""

    def __init__(self, inner: Endpoint, corrupt_at: int) -> None:
        self.inner = inner
        self.offset = 0
        self.corrupt_at = corrupt_at

    def send(self, data):
        return self.inner.send(data)

    def recv(self, n):
        chunk = self.inner.recv(n)
        if chunk and self.offset <= self.corrupt_at < self.offset + len(chunk):
            i = self.corrupt_at - self.offset
            chunk = chunk[:i] + bytes([chunk[i] ^ 0xFF]) + chunk[i + 1 :]
        self.offset += len(chunk)
        return chunk

    def close(self):
        self.inner.close()


class TestSenderFaults:
    @pytest.mark.parametrize("budget", [10, 5000, 60_000])
    def test_send_failure_raises_not_hangs(self, budget):
        a, b = pipe_pair()
        sender = MessageSender(FailingEndpoint(a, budget), CFG)
        data = ascii_data(120_000, seed=1)
        with pytest.raises(TransportClosed):
            sender.send(data)
        b.close()

    def test_send_failure_mid_pipeline_joins_worker(self):
        """The compression thread must not be left running."""
        a, b = pipe_pair()
        sender = MessageSender(FailingEndpoint(a, 30_000), CFG)
        data = ascii_data(200_000, seed=2)
        before = threading.active_count()
        with pytest.raises(TransportClosed):
            sender.send(data)
        # Allow a scheduling beat, then verify no stray adoc thread.
        for t in threading.enumerate():
            if t.name == "adoc-compress":
                t.join(timeout=5)
                assert not t.is_alive(), "compression thread leaked"
        b.close()
        assert threading.active_count() <= before + 1


class TestReceiverFaults:
    def test_peer_death_mid_message_raises_on_read(self, background):
        a, b = pipe_pair()
        sender = MessageSender(a, CFG)
        receiver = ReceiverPipeline(b, CFG)
        data = ascii_data(100_000, seed=3)

        def send_then_die():
            # Send the message header + part of the payload, then die.
            from repro.core.packets import Record, pack_message_header

            from repro.transport.base import sendall

            sendall(a, pack_message_header(100_000))
            rec = Record(0, 50_000, data[:50_000]).serialize()
            sendall(a, rec[: len(rec) // 2])
            a.close()

        bg = background(send_then_die)
        bg.join()
        with pytest.raises((TransportClosed, ProtocolError)):
            while True:
                if not receiver.read(65536):
                    raise TransportClosed("eof")
        receiver.close()

    def test_corrupted_compressed_payload_raises(self, background):
        a, b = pipe_pair()
        sender = MessageSender(a, CFG.with_levels(2, 10))  # force zlib
        corrupt_rx = CorruptingEndpoint(b, corrupt_at=200)
        receiver = ReceiverPipeline(corrupt_rx, CFG)
        data = ascii_data(60_000, seed=4)

        def send():
            try:
                sender.send(data)
            except TransportClosed:
                pass  # receiver may tear the pipe down first

        bg = background(send)
        with pytest.raises(Exception) as excinfo:
            out = bytearray()
            while len(out) < len(data):
                chunk = receiver.read(len(data) - len(out))
                if not chunk:
                    raise TransportClosed("eof before full payload")
                out += chunk
            # If all bytes arrived, they must at least differ (the
            # corruption cannot silently vanish).
            assert bytes(out) != data
            raise TransportClosed("corruption produced wrong bytes")
        bg.join()
        receiver.close()

    def test_garbage_stream_rejected(self):
        a, b = pipe_pair()
        receiver = ReceiverPipeline(b, CFG)
        a.send(b"\x00" * 64)
        a.close()
        with pytest.raises((ProtocolError, TransportClosed)):
            if not receiver.read(10):
                raise TransportClosed("eof")
        receiver.close()

    def test_clean_eof_is_not_an_error(self):
        a, b = pipe_pair()
        receiver = ReceiverPipeline(b, CFG)
        a.close()
        assert receiver.read(10) == b""
        receiver.close()


class TestApiLevelFaults:
    def test_write_on_dead_peer_raises(self, background):
        a, b = pipe_pair()
        tx = AdocSocket(a, CFG)
        b.close()
        with pytest.raises(TransportClosed):
            tx.write(ascii_data(50_000, seed=5))
        tx.close()
