"""Live transfers across data classes x network profiles (scaled).

The real-time shaped links make full paper-scale transfers slow, so the
live matrix runs modest sizes on bandwidth-scaled profiles — the point
is that the *live threaded library* (not the simulator) moves every data
class over every network shape correctly, compressing where it should.
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro.core import AdocSocket, DEFAULT_CONFIG
from repro.data import ascii_data, binary_data, incompressible_data
from repro.transport import GBIT, INTERNET, LAN100, RENATER

#: Scale WANs up so a 1.5 MB transfer completes in about a second.
LIVE_PROFILES = [
    LAN100,
    GBIT,
    dataclasses.replace(RENATER.scaled(20), name="renater-x20"),
    dataclasses.replace(INTERNET.scaled(30), name="internet-x30", latency_s=2e-3),
]

GENERATORS = {
    "ascii": ascii_data,
    "binary": binary_data,
    "incompressible": incompressible_data,
}


@pytest.mark.parametrize("profile", LIVE_PROFILES, ids=lambda p: p.name)
@pytest.mark.parametrize("cls", list(GENERATORS))
def test_live_transfer(profile, cls):
    data = GENERATORS[cls](1_500_000, seed=11)
    a, b = profile.make_pair(seed=5)
    tx, rx = AdocSocket(a), AdocSocket(b)
    result = {}

    def send() -> None:
        result["write"] = tx.write(data)

    t = threading.Thread(target=send, daemon=True)
    t.start()
    got = rx.read_exact(len(data))
    t.join(timeout=120)
    assert not t.is_alive(), "sender hung"
    assert got == data
    nbytes, slen = result["write"]
    assert nbytes == len(data)
    # Never inflate beyond framing overhead.
    assert slen <= len(data) * 1.01 + 1024
    tx.close()
    rx.close()


def test_gbit_takes_fast_path_live():
    """On the Gbit profile the probe must choose raw transfer."""
    data = ascii_data(1_500_000, seed=2)
    a, b = GBIT.make_pair(seed=1)
    tx, rx = AdocSocket(a), AdocSocket(b)
    res = {}
    t = threading.Thread(target=lambda: res.update(w=tx.write(data)), daemon=True)
    t.start()
    got = rx.read_exact(len(data))
    t.join(timeout=60)
    assert got == data
    _, slen = res["w"]
    assert slen >= len(data)  # raw: no compression happened
    tx.close()
    rx.close()


def test_wan_compresses_live():
    """On a (scaled) WAN profile, ASCII data must actually compress."""
    profile = RENATER.scaled(20)
    data = ascii_data(1_500_000, seed=3)
    a, b = profile.make_pair(seed=1)
    tx, rx = AdocSocket(a), AdocSocket(b)
    res = {}
    t = threading.Thread(target=lambda: res.update(w=tx.write(data)), daemon=True)
    t.start()
    got = rx.read_exact(len(data))
    t.join(timeout=120)
    assert got == data
    nbytes, slen = res["w"]
    assert nbytes / slen > 1.5, "expected compression on a slow WAN"
    tx.close()
    rx.close()
