"""The full stack over real loopback TCP sockets.

Every higher-level subsystem is transport-agnostic through the
``transport_factory`` seam; these tests prove it by running middleware,
depot and gridFTP over genuine TCP connections (the paper's deployment
surface) rather than in-memory pipes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdocConfig
from repro.data import ascii_data, dense_matrix
from repro.depot import ByteArrayDepot, DepotClient, depot_registry
from repro.gridftp import FileClient, FileServer
from repro.middleware import AdocCommunicator, Agent, Client, Server
from repro.transport import tcp_pair

CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    fast_network_bps=float("inf"),
)


def adoc_comm(endpoint):
    return AdocCommunicator(endpoint, CFG)


class TestMiddlewareOverTcp:
    def test_dgemm(self):
        agent = Agent()
        server = Server("tcp-server", communicator_factory=adoc_comm)
        agent.register(server, tcp_pair)
        client = Client(agent, communicator_factory=adoc_comm)
        a, b = dense_matrix(24, seed=1), dense_matrix(24, seed=2)
        c = client.call("dgemm", a, b)
        np.testing.assert_allclose(c, a @ b, rtol=1e-9)


class TestDepotOverTcp:
    def test_store_load(self):
        depot = ByteArrayDepot()
        agent = Agent()
        server = Server(
            "tcp-depot", registry=depot_registry(depot), communicator_factory=adoc_comm
        )
        agent.register(server, tcp_pair)
        client = DepotClient(agent, communicator_factory=adoc_comm)
        blob = ascii_data(120_000, seed=3)
        _, read_cap, write_cap = client.allocate(len(blob))
        client.store(write_cap, blob)
        assert client.load(read_cap) == blob


class TestGridFtpOverTcp:
    def test_store_retrieve_adoc_mode(self):
        server = FileServer(tcp_pair, config=CFG, chunk_size=96 * 1024)
        client = FileClient(server, config=CFG)
        client.set_mode("ADOC")
        client.set_stripes(2)
        data = ascii_data(250_000, seed=4)
        report = client.store("tcp.txt", data)
        assert report.compression_ratio > 1.0
        assert client.retrieve("tcp.txt") == data
        client.quit()
