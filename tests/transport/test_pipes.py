"""In-memory pipes: stream semantics, backpressure, EOF."""

from __future__ import annotations

import threading
import time

import pytest

from repro.transport import (
    ByteConduit,
    TransportClosed,
    pipe_pair,
    recv_exact,
    sendall,
)


class TestConduit:
    def test_write_read(self):
        c = ByteConduit()
        assert c.write(b"hello") == 5
        assert c.read(5) == b"hello"

    def test_read_respects_limit_and_splits_segments(self):
        c = ByteConduit()
        c.write(b"abcdef")
        assert c.read(2) == b"ab"
        assert c.read(10) == b"cdef"

    def test_capacity_limits_single_write(self):
        c = ByteConduit(capacity=4)
        assert c.write(b"abcdef") == 4  # short write
        assert c.read(10) == b"abcd"

    def test_eof_after_close_write(self):
        c = ByteConduit()
        c.write(b"tail")
        c.close_write()
        assert c.read(10) == b"tail"
        assert c.read(10) == b""
        assert c.read(1) == b""

    def test_write_after_close_raises(self):
        c = ByteConduit()
        c.close_write()
        with pytest.raises(TransportClosed):
            c.write(b"x")

    def test_close_read_breaks_writer(self):
        c = ByteConduit()
        c.close_read()
        with pytest.raises(TransportClosed):
            c.write(b"x")

    def test_delayed_availability(self):
        c = ByteConduit()
        t_avail = time.monotonic() + 0.15
        c.write(b"later", avail_time=t_avail)
        t0 = time.monotonic()
        assert c.read(5) == b"later"
        assert time.monotonic() - t0 >= 0.10

    def test_invalid_read_size(self):
        c = ByteConduit()
        with pytest.raises(ValueError):
            c.read(0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ByteConduit(capacity=0)

    def test_blocked_writer_resumes_after_read(self):
        c = ByteConduit(capacity=4)
        c.write(b"abcd")
        state = {}

        def writer():
            state["n"] = c.write(b"ef")

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert "n" not in state
        assert c.read(4) == b"abcd"
        t.join(timeout=5)
        assert state["n"] == 2

    def test_buffered_property(self):
        c = ByteConduit()
        c.write(b"abc")
        assert c.buffered == 3
        c.read(2)
        assert c.buffered == 1


class TestPipePair:
    def test_duplex(self):
        a, b = pipe_pair()
        a.send(b"ping")
        assert b.recv(4) == b"ping"
        b.send(b"pong")
        assert a.recv(4) == b"pong"

    def test_sendall_recv_exact(self):
        a, b = pipe_pair()
        data = bytes(range(256)) * 100
        t = threading.Thread(target=sendall, args=(a, data), daemon=True)
        t.start()
        assert recv_exact(b, len(data)) == data
        t.join(timeout=5)

    def test_eof_propagates(self):
        a, b = pipe_pair()
        a.send(b"bye")
        a.shutdown_write()
        assert b.recv(3) == b"bye"
        assert b.recv(1) == b""

    def test_recv_exact_raises_on_short_stream(self):
        a, b = pipe_pair()
        a.send(b"abc")
        a.shutdown_write()
        with pytest.raises(TransportClosed):
            recv_exact(b, 10)

    def test_close_is_idempotent(self):
        a, b = pipe_pair()
        a.close()
        a.close()
        assert b.recv(1) == b""

    def test_half_close_keeps_reverse_path(self):
        a, b = pipe_pair()
        a.shutdown_write()
        assert b.recv(1) == b""
        b.send(b"still works")
        assert a.recv(11) == b"still works"
