"""Real-socket endpoints: loopback TCP and socketpair."""

from __future__ import annotations

import threading

from repro.transport import (
    recv_exact,
    sendall,
    socketpair_endpoints,
    tcp_pair,
)


class TestSocketpair:
    def test_roundtrip(self):
        a, b = socketpair_endpoints()
        sendall(a, b"hello")
        assert recv_exact(b, 5) == b"hello"
        a.close()
        b.close()

    def test_eof_on_close(self):
        a, b = socketpair_endpoints()
        a.close()
        assert b.recv(1) == b""
        b.close()

    def test_shutdown_write_half_close(self):
        a, b = socketpair_endpoints()
        sendall(a, b"fin")
        a.shutdown_write()
        assert recv_exact(b, 3) == b"fin"
        assert b.recv(1) == b""
        sendall(b, b"reply")
        assert recv_exact(a, 5) == b"reply"
        a.close()
        b.close()


class TestTcpPair:
    def test_roundtrip_large(self):
        a, b = tcp_pair()
        data = bytes(range(256)) * 2000  # 512 KB
        t = threading.Thread(target=sendall, args=(a, data), daemon=True)
        t.start()
        assert recv_exact(b, len(data)) == data
        t.join(timeout=10)
        a.close()
        b.close()

    def test_nodelay_set(self):
        import socket

        a, b = tcp_pair(nodelay=True)
        assert a.socket.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY) != 0
        a.close()
        b.close()

    def test_duplex(self):
        a, b = tcp_pair()
        sendall(a, b"c2s")
        assert recv_exact(b, 3) == b"c2s"
        sendall(b, b"s2c")
        assert recv_exact(a, 3) == b"s2c"
        a.close()
        b.close()
