"""Network profiles: the paper's four experimental networks."""

from __future__ import annotations

import pytest

from repro.transport import (
    ALL_PROFILES,
    GBIT,
    INTERNET,
    LAN100,
    RENATER,
    recv_exact,
    sendall,
)


def test_all_four_networks_present():
    assert set(ALL_PROFILES) == {"lan100", "gbit", "renater", "internet"}


def test_rtts_match_table2_posix_column():
    """Table 2's POSIX ping-pong times are the profiles' RTTs."""
    assert LAN100.rtt_s == pytest.approx(0.18e-3)
    assert GBIT.rtt_s == pytest.approx(0.030e-3)
    assert RENATER.rtt_s == pytest.approx(9.2e-3)
    assert INTERNET.rtt_s == pytest.approx(80e-3)


def test_bandwidth_ordering():
    assert GBIT.bandwidth_bps > LAN100.bandwidth_bps > RENATER.bandwidth_bps
    assert RENATER.bandwidth_bps > INTERNET.bandwidth_bps


def test_wans_have_jitter_and_congestion():
    for p in (RENATER, INTERNET):
        assert p.jitter is not None
        assert p.congestion is not None
    for p in (LAN100, GBIT):
        assert p.jitter is None
        assert p.congestion is None


def test_internet_receiver_slower():
    """Paper: the Tennessee machine was slower than the French ones."""
    assert INTERNET.receiver_cpu_scale < 1.0


def test_lan_buffers_below_probe_size():
    """The 256 KB probe must overflow the socket buffer to measure the
    line rate (section 5, 'Fast Networks')."""
    assert LAN100.buffer_bytes < 256 * 1024
    assert RENATER.buffer_bytes < 256 * 1024
    assert INTERNET.buffer_bytes < 256 * 1024


def test_scaled_copies_bandwidth_only():
    fast = RENATER.scaled(10)
    assert fast.bandwidth_bps == pytest.approx(RENATER.bandwidth_bps * 10)
    assert fast.latency_s == RENATER.latency_s
    assert RENATER.bandwidth_bps == pytest.approx(5.5e6)  # original intact


def test_make_pair_is_usable():
    a, b = LAN100.make_pair(seed=1)
    sendall(a, b"probe")
    assert recv_exact(b, 5) == b"probe"
    a.close()
    b.close()


def test_make_pair_deterministic_seeding():
    # Two pairs with the same seed shape identically (no shared state).
    a1, b1 = RENATER.make_pair(seed=7)
    a2, b2 = RENATER.make_pair(seed=7)
    for ep in (a1, b1, a2, b2):
        ep.close()
