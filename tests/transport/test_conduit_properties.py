"""Property tests: conduits preserve the byte stream under any chunking."""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport import ByteConduit, pipe_pair, shaped_pair
from repro.transport.base import recv_exact, sendall


@settings(max_examples=50, deadline=None)
@given(
    writes=st.lists(st.binary(min_size=1, max_size=300), min_size=1, max_size=20),
    read_sizes=st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=10),
)
def test_conduit_stream_integrity(writes, read_sizes):
    """Any write chunking + any read chunking = the same byte stream."""
    c = ByteConduit(capacity=1 << 20)
    expected = b"".join(writes)
    for w in writes:
        assert c.write(w) == len(w)  # capacity never hit here
    c.close_write()
    out = bytearray()
    i = 0
    while True:
        chunk = c.read(read_sizes[i % len(read_sizes)])
        if not chunk:
            break
        out += chunk
        i += 1
    assert bytes(out) == expected


@settings(max_examples=25, deadline=None)
@given(
    payload=st.binary(min_size=1, max_size=20_000),
    capacity=st.integers(min_value=16, max_value=4096),
)
def test_pipe_backpressure_preserves_stream(payload, capacity):
    """Tiny capacities force many blocking cycles; bytes still arrive
    intact and in order."""
    a, b = pipe_pair(capacity=capacity)
    t = threading.Thread(target=sendall, args=(a, payload), daemon=True)
    t.start()
    got = recv_exact(b, len(payload))
    t.join(timeout=30)
    assert not t.is_alive()
    assert got == payload
    a.close()
    b.close()


@settings(max_examples=10, deadline=None)
@given(
    payload=st.binary(min_size=1, max_size=30_000),
    seed=st.integers(min_value=0, max_value=100),
)
def test_shaped_link_preserves_stream(payload, seed):
    """Shaping (MTU chopping + timed delivery) never reorders or drops."""
    a, b = shaped_pair(
        bandwidth_bps=800e6, latency_s=1e-5, buffer_bytes=8 * 1024, seed=seed
    )
    t = threading.Thread(target=sendall, args=(a, payload), daemon=True)
    t.start()
    got = recv_exact(b, len(payload))
    t.join(timeout=30)
    assert got == payload
    a.close()
    b.close()
