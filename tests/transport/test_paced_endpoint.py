"""PacedEndpoint: token-bucket shaping over live endpoints."""

from __future__ import annotations

import threading
import time

from repro.transport import PacedEndpoint, pipe_pair, recv_exact, sendall


def test_roundtrip_correctness():
    a, b = pipe_pair()
    paced = PacedEndpoint(a, rate_bps=800e6)  # fast: pacing invisible
    data = bytes(range(256)) * 200
    t = threading.Thread(target=sendall, args=(paced, data), daemon=True)
    t.start()
    assert recv_exact(b, len(data)) == data
    t.join(timeout=10)
    paced.close()
    b.close()


def test_rate_enforced_live():
    a, b = pipe_pair(capacity=1 << 22)
    paced = PacedEndpoint(a, rate_bps=8e6)  # 1 MB/s
    data = b"x" * 300_000
    t0 = time.monotonic()
    t = threading.Thread(target=sendall, args=(paced, data), daemon=True)
    t.start()
    recv_exact(b, len(data))
    elapsed = time.monotonic() - t0
    t.join(timeout=30)
    # ~0.3 s at 1 MB/s minus the initial burst allowance.
    assert elapsed >= 0.12, f"pacing not enforced: {elapsed:.3f}s"
    paced.close()
    b.close()


def test_shutdown_and_recv_delegate():
    a, b = pipe_pair()
    paced = PacedEndpoint(a, rate_bps=1e9)
    sendall(b, b"inbound")
    assert recv_exact(paced, 7) == b"inbound"
    paced.shutdown_write()
    assert b.recv(1) == b""
    paced.close()
    b.close()
