"""Link shaping: serialization rate, latency, jitter, token bucket."""

from __future__ import annotations

import threading
import time

import pytest

from repro.transport import (
    CongestionModel,
    JitterModel,
    LinkScheduler,
    TokenBucket,
    recv_exact,
    sendall,
    shaped_pair,
)


class TestLinkScheduler:
    def test_serialization_accumulates(self):
        sched = LinkScheduler(bandwidth_bps=8_000_000, latency_s=0.0)  # 1 MB/s
        t0 = 100.0
        t1 = sched.schedule(500_000, now=t0)
        assert t1 == pytest.approx(100.5)
        t2 = sched.schedule(500_000, now=t0)  # queued behind the first
        assert t2 == pytest.approx(101.0)

    def test_latency_added_per_segment(self):
        sched = LinkScheduler(bandwidth_bps=8e9, latency_s=0.25)
        t = sched.schedule(1, now=0.0)
        assert t >= 0.25

    def test_idle_link_does_not_accumulate(self):
        sched = LinkScheduler(bandwidth_bps=8_000_000, latency_s=0.0)
        sched.schedule(500_000, now=0.0)
        t = sched.schedule(500_000, now=100.0)  # long idle gap
        assert t == pytest.approx(100.5)

    def test_jitter_adds_nonnegative_delay(self):
        jitter = JitterModel(base=0.01, mean_extra=0.05, burst_prob=1.0)
        sched = LinkScheduler(8e6, 0.0, jitter=jitter, seed=1)
        base = LinkScheduler(8e6, 0.0, seed=1)
        assert sched.schedule(1000, now=0.0) > base.schedule(1000, now=0.0)

    def test_congestion_slows_link(self):
        cong = CongestionModel(enter_prob=1.0, exit_prob=0.0, slowdown=0.1)
        slow = LinkScheduler(8_000_000, 0.0, congestion=cong, seed=1)
        fast = LinkScheduler(8_000_000, 0.0, seed=1)
        assert slow.schedule(100_000, now=0.0) > fast.schedule(100_000, now=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkScheduler(0, 0.0)
        with pytest.raises(ValueError):
            LinkScheduler(1e6, -1.0)


class TestShapedPair:
    def test_roundtrip_correctness(self):
        a, b = shaped_pair(bandwidth_bps=80e6, latency_s=1e-4, seed=0)
        data = bytes(range(256)) * 400  # 100 KB
        t = threading.Thread(target=sendall, args=(a, data), daemon=True)
        t.start()
        got = recv_exact(b, len(data))
        t.join(timeout=10)
        assert got == data

    def test_bandwidth_enforced(self):
        # 8 Mbit/s = 1 MB/s; 200 KB (beyond the 64 KB buffer) must take
        # roughly (200-64)/1000 ~ 0.14 s to *send* and 0.2 s to receive.
        a, b = shaped_pair(bandwidth_bps=8e6, latency_s=0.0, buffer_bytes=64 * 1024, seed=0)
        data = b"x" * 200_000
        t0 = time.monotonic()
        t = threading.Thread(target=sendall, args=(a, data), daemon=True)
        t.start()
        recv_exact(b, len(data))
        elapsed = time.monotonic() - t0
        t.join(timeout=10)
        assert 0.15 <= elapsed <= 0.6, f"200KB at 1MB/s took {elapsed:.3f}s"

    def test_latency_floor(self):
        a, b = shaped_pair(bandwidth_bps=1e9, latency_s=0.1, seed=0)
        t0 = time.monotonic()
        sendall(a, b"ping")
        assert recv_exact(b, 4) == b"ping"
        assert time.monotonic() - t0 >= 0.09

    def test_duplex_symmetric(self):
        a, b = shaped_pair(bandwidth_bps=80e6, latency_s=1e-3, seed=0)
        sendall(a, b"there")
        assert recv_exact(b, 5) == b"there"
        sendall(b, b"back!")
        assert recv_exact(a, 5) == b"back!"


class TestTokenBucket:
    def test_burst_passes_instantly(self):
        tb = TokenBucket(rate_bps=8e6, burst_bytes=10_000)
        t0 = time.monotonic()
        tb.acquire(10_000)
        assert time.monotonic() - t0 < 0.05

    def test_sustained_rate_enforced(self):
        tb = TokenBucket(rate_bps=8e6, burst_bytes=1_000)  # 1 MB/s
        t0 = time.monotonic()
        for _ in range(10):
            tb.acquire(10_000)  # 100 KB total
        elapsed = time.monotonic() - t0
        assert elapsed >= 0.08

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0)
