"""Lossy image codec (the paper's future-work extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compress import CodecError
from repro.compress.lossy import (
    RESOLUTION_LEVELS,
    compress_image,
    decompress_image,
    psnr,
    thumbnail_ladder,
)
from repro.data.images import synthetic_image


@pytest.fixture(scope="module")
def rgb():
    return synthetic_image(96, 128, channels=3, seed=4)


@pytest.fixture(scope="module")
def gray():
    return synthetic_image(80, 80, channels=1, seed=5)


class TestRoundTrip:
    def test_level0_shape_preserved(self, rgb):
        out = decompress_image(compress_image(rgb, 0))
        assert out.shape == rgb.shape
        assert out.dtype == np.uint8

    def test_level0_lossless_spatially(self, rgb):
        """Level 0 keeps all 8 bits and full resolution: identical."""
        out = decompress_image(compress_image(rgb, 0))
        assert np.array_equal(out, rgb)

    @pytest.mark.parametrize("level", range(len(RESOLUTION_LEVELS)))
    def test_every_level_roundtrips_shape(self, rgb, gray, level):
        for img in (rgb, gray):
            out = decompress_image(compress_image(img, level))
            assert out.shape == img.shape

    def test_odd_dimensions(self):
        img = synthetic_image(33, 47, channels=3, seed=2)
        for level in range(len(RESOLUTION_LEVELS)):
            assert decompress_image(compress_image(img, level)).shape == img.shape


class TestFidelityLadder:
    def test_size_decreases_with_level(self, rgb):
        sizes = [len(compress_image(rgb, lvl)) for lvl in range(len(RESOLUTION_LEVELS))]
        for lo, hi in zip(sizes, sizes[1:]):
            assert hi < lo, sizes

    def test_psnr_decreases_with_level(self, rgb):
        scores = [
            psnr(rgb, decompress_image(compress_image(rgb, lvl)))
            for lvl in range(len(RESOLUTION_LEVELS))
        ]
        for better, worse in zip(scores, scores[1:]):
            assert better > worse, scores

    def test_thumbnail_quality_still_recognisable(self, rgb):
        """The smallest rendition keeps PSNR above ~15 dB — thumbnail
        grade, per the paper's use case."""
        tiny = decompress_image(compress_image(rgb, len(RESOLUTION_LEVELS) - 1))
        assert psnr(rgb, tiny) > 15.0

    def test_thumbnail_ladder_sorted_smallest_first(self, rgb):
        ladder = thumbnail_ladder(rgb)
        sizes = [len(data) for _, data in ladder]
        assert sizes == sorted(sizes)
        assert len(ladder) == len(RESOLUTION_LEVELS)


class TestValidation:
    def test_bad_level(self, rgb):
        with pytest.raises(ValueError):
            compress_image(rgb, 99)

    def test_bad_dtype(self):
        with pytest.raises(ValueError):
            compress_image(np.zeros((4, 4), dtype=np.float64), 0)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            compress_image(np.zeros((4, 4, 4), dtype=np.uint8), 0)

    def test_truncated_data(self, rgb):
        data = compress_image(rgb, 1)
        with pytest.raises(CodecError):
            decompress_image(data[: len(data) // 2])

    def test_bad_magic(self, rgb):
        data = bytearray(compress_image(rgb, 1))
        data[0] = ord("X")
        with pytest.raises(CodecError):
            decompress_image(bytes(data))

    def test_psnr_shape_mismatch(self, rgb, gray):
        with pytest.raises(ValueError):
            psnr(rgb, gray)

    def test_psnr_identical_is_inf(self, gray):
        assert psnr(gray, gray) == float("inf")
