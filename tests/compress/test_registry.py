"""Level registry: the paper's level-to-codec mapping."""

from __future__ import annotations

import pytest

from repro.compress import (
    ADOC_MAX_LEVEL,
    ADOC_MIN_LEVEL,
    LzfCodec,
    NullCodec,
    ZlibCodec,
    all_levels,
    codec_for_level,
    level_name,
)


def test_level_bounds():
    assert ADOC_MIN_LEVEL == 0
    assert ADOC_MAX_LEVEL == 10
    assert all_levels() == list(range(11))


def test_level_zero_is_identity():
    assert isinstance(codec_for_level(0), NullCodec)
    data = b"anything at all"
    assert codec_for_level(0).compress(data) == data


def test_level_one_is_lzf():
    assert isinstance(codec_for_level(1), LzfCodec)


@pytest.mark.parametrize("level", range(2, 11))
def test_levels_two_plus_are_zlib(level):
    codec = codec_for_level(level)
    assert isinstance(codec, ZlibCodec)
    # AdOC level N maps to gzip/zlib level N-1 (paper section 2).
    assert codec.level == level - 1


@pytest.mark.parametrize("bad", [-1, 11, 100])
def test_out_of_range_levels_rejected(bad):
    with pytest.raises(ValueError):
        codec_for_level(bad)


def test_codecs_are_shared_instances():
    assert codec_for_level(3) is codec_for_level(3)


def test_level_names_follow_paper_terminology():
    assert level_name(0) == "none"
    assert level_name(1) == "lzf"
    assert level_name(2) == "gzip 1"
    assert level_name(10) == "gzip 9"


@pytest.mark.parametrize("level", range(11))
def test_every_level_roundtrips(level):
    codec = codec_for_level(level)
    data = b"roundtrip me please, with some repetition repetition" * 40
    assert codec.decompress(codec.compress(data), len(data)) == data
