"""Canonical Huffman codec (related-work comparator)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import CodecError
from repro.compress.huffman import (
    HuffmanCodec,
    code_lengths,
    huffman_compress,
    huffman_decompress,
)
from repro.compress.lzf import lzf_compress
from repro.data import ascii_data, incompressible_data


class TestCodeLengths:
    def test_empty(self):
        assert code_lengths(b"") == {}

    def test_single_symbol_gets_one_bit(self):
        assert code_lengths(b"aaaa") == {ord("a"): 1}

    def test_kraft_inequality(self):
        """Valid prefix code: sum of 2^-len <= 1 (== 1 for Huffman)."""
        lengths = code_lengths(ascii_data(10_000, seed=1))
        assert sum(2.0 ** -l for l in lengths.values()) == pytest.approx(1.0)

    def test_frequent_symbols_get_shorter_codes(self):
        data = b"a" * 1000 + b"b" * 10 + b"c" * 10 + b"d"
        lengths = code_lengths(data)
        assert lengths[ord("a")] < lengths[ord("d")]

    def test_uniform_two_symbols(self):
        assert set(code_lengths(b"abab").values()) == {1}


class TestRoundTrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"ab",
            b"hello world hello world",
            bytes(range(256)),
            b"\x00" * 1000,
            b"a" * 999 + b"b",
        ],
    )
    def test_cases(self, data):
        assert huffman_decompress(huffman_compress(data), len(data)) == data

    def test_ascii_class(self):
        data = ascii_data(50_000, seed=2)
        comp = huffman_compress(data)
        assert huffman_decompress(comp, len(data)) == data
        # Text has < 8 bits/byte entropy: Huffman must save something.
        assert len(comp) < len(data)

    def test_random_data_bounded_expansion(self):
        data = incompressible_data(20_000, seed=3)
        comp = huffman_compress(data)
        # 8-bit-entropy data: output ~ input + table/header.
        assert len(comp) <= len(data) * 1.01 + 600
        assert huffman_decompress(comp, len(data)) == data


class TestValidation:
    def test_bad_magic(self):
        comp = bytearray(huffman_compress(b"payload"))
        comp[0] = ord("X")
        with pytest.raises(CodecError):
            huffman_decompress(bytes(comp))

    def test_truncated_payload(self):
        comp = huffman_compress(ascii_data(5000, seed=4))
        with pytest.raises(CodecError):
            huffman_decompress(comp[: len(comp) // 2])

    def test_size_mismatch(self):
        comp = huffman_compress(b"12345")
        with pytest.raises(CodecError):
            huffman_decompress(comp, expected_size=4)

    def test_truncated_header(self):
        with pytest.raises(CodecError):
            huffman_decompress(b"HF\x00")


class TestCodecInterface:
    def test_roundtrip(self):
        codec = HuffmanCodec()
        assert codec.name == "huffman"
        data = ascii_data(10_000, seed=5)
        assert codec.decompress(codec.compress(data), len(data)) == data


class TestRelatedWorkClaim:
    def test_lzf_out_compresses_huffman_on_lz_friendly_workloads(self):
        """Paper section 7: Huffman 'gives lower compression ratio than
        LZF'.  True wherever repetition (back references) carries the
        signal — binaries, structured payloads, sparse matrices; an
        order-0 coder is capped by byte entropy and cannot see any of
        it.  (On pure limited-alphabet text the entropy coder can edge
        out a weak LZ matcher; the paper's workloads are the former.)"""
        from repro.data import binary_data, encode_matrix_ascii, sparse_matrix, synthetic_tar_bytes

        workloads = {
            "tar": synthetic_tar_bytes(n_members=2, member_size=100_000, seed=1),
            "sparse": encode_matrix_ascii(sparse_matrix(100)),
            "binary": binary_data(150_000, seed=1),
        }
        for name, data in workloads.items():
            lzf_ratio = len(data) / len(lzf_compress(data))
            huff_ratio = len(data) / len(huffman_compress(data))
            assert lzf_ratio > huff_ratio, name


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=4096))
def test_roundtrip_property(data):
    assert huffman_decompress(huffman_compress(data), len(data)) == data


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=1, max_size=1024))
def test_entropy_bound_property(data):
    """Huffman output is never below the Shannon bound (minus the
    per-block header) and never above input + table + slack."""
    import math
    from collections import Counter

    comp = huffman_compress(data)
    freq = Counter(data)
    n = len(data)
    entropy_bits = -sum(c * math.log2(c / n) for c in freq.values())
    header = 7 + 2 * len(freq) + 1
    assert len(comp) >= math.floor(entropy_bits / 8)
    assert len(comp) <= header + n + n // 8 + 8
