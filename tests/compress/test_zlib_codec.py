"""zlib codec wrapper: levels, errors, Table-1 monotonicity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import CodecError, ZlibCodec
from repro.data import ascii_data


def test_levels_validated():
    with pytest.raises(ValueError):
        ZlibCodec(0)
    with pytest.raises(ValueError):
        ZlibCodec(10)


def test_name_contains_level():
    assert ZlibCodec(5).name == "zlib-5"


def test_roundtrip_all_levels():
    data = ascii_data(100_000, seed=7)
    for lvl in range(1, 10):
        codec = ZlibCodec(lvl)
        assert codec.decompress(codec.compress(data), len(data)) == data


def test_ratio_monotone_in_level():
    """Table 1: the compression ratio never decreases with the level."""
    data = ascii_data(400_000, seed=3)
    sizes = [len(ZlibCodec(lvl).compress(data)) for lvl in range(1, 10)]
    for lo, hi in zip(sizes, sizes[1:]):
        assert hi <= lo * 1.001  # allow sub-0.1% noise


def test_corrupt_input_raises_codec_error():
    with pytest.raises(CodecError):
        ZlibCodec(6).decompress(b"this is not a zlib stream")


def test_truncated_input_raises_codec_error():
    comp = ZlibCodec(6).compress(b"payload " * 1000)
    with pytest.raises(CodecError):
        ZlibCodec(6).decompress(comp[: len(comp) // 2])


def test_size_mismatch_raises():
    codec = ZlibCodec(1)
    comp = codec.compress(b"12345")
    with pytest.raises(CodecError):
        codec.decompress(comp, expected_size=4)


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=4096), st.integers(min_value=1, max_value=9))
def test_roundtrip_property(data, level):
    codec = ZlibCodec(level)
    assert codec.decompress(codec.compress(data), len(data)) == data
