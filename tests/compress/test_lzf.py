"""LZF codec: format behaviour, round trips, property-based fuzzing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import CodecError, LzfCodec, lzf_compress, lzf_decompress


class TestRoundTrip:
    def test_empty(self):
        assert lzf_compress(b"") == b""
        assert lzf_decompress(b"") == b""

    @pytest.mark.parametrize(
        "data",
        [
            b"a",
            b"ab",
            b"abc",
            b"abcd",
            b"hello world",
            b"aaaa",
            b"\x00" * 7,
        ],
    )
    def test_short_inputs(self, data):
        assert lzf_decompress(lzf_compress(data), len(data)) == data

    def test_highly_repetitive(self):
        data = b"x" * 100_000
        comp = lzf_compress(data)
        assert len(comp) < len(data) // 20, "RLE-like input must collapse"
        assert lzf_decompress(comp, len(data)) == data

    def test_repeating_pattern(self):
        data = b"abcdefgh" * 10_000
        comp = lzf_compress(data)
        assert len(comp) < len(data) // 10
        assert lzf_decompress(comp, len(data)) == data

    def test_random_bytes_do_not_crash(self):
        import random

        rng = random.Random(42)
        data = bytes(rng.randrange(256) for _ in range(50_000))
        comp = lzf_compress(data)
        # Literal-run encoding costs at most 1 byte per 32.
        assert len(comp) <= len(data) + len(data) // 32 + 2
        assert lzf_decompress(comp, len(data)) == data

    def test_all_byte_values(self):
        data = bytes(range(256)) * 64
        assert lzf_decompress(lzf_compress(data), len(data)) == data

    def test_long_match_beyond_max_ref(self):
        # Matches longer than 264 must be split into several references.
        data = b"Q" * 5000 + b"tail"
        assert lzf_decompress(lzf_compress(data), len(data)) == data

    def test_match_at_max_offset(self):
        # A repetition exactly 8 KiB apart is the furthest reachable.
        block = bytes(range(200))
        data = block + b"\xff" * (8192 - len(block)) + block
        assert lzf_decompress(lzf_compress(data), len(data)) == data

    def test_match_beyond_max_offset_still_roundtrips(self):
        block = bytes(range(200))
        data = block + b"\xff" * 9000 + block
        assert lzf_decompress(lzf_compress(data), len(data)) == data


class TestFormat:
    def test_literal_run_encoding(self):
        # 3 incompressible bytes: control byte (len-1) + literals.
        out = lzf_compress(b"xyz")
        assert out[0] == 2
        assert out[1:] == b"xyz"

    def test_decoder_rejects_truncated_literal_run(self):
        with pytest.raises(CodecError):
            lzf_decompress(bytes([10]) + b"ab")  # run of 11, only 2 present

    def test_decoder_rejects_bad_back_reference(self):
        # ctrl >= 32 encodes a reference; offset points before output start.
        with pytest.raises(CodecError):
            lzf_decompress(bytes([0b001_00000, 0xFF]))

    def test_decoder_rejects_truncated_stream(self):
        # Truncation either breaks a token (decode error) or silently
        # drops a whole trailing token — the expected-size check must
        # catch whichever happens.
        data = b"hello world, hello world, hello world"
        comp = lzf_compress(data)
        with pytest.raises(CodecError):
            lzf_decompress(comp[:-3], len(data))

    def test_expected_size_mismatch_raises(self):
        comp = lzf_compress(b"some data here")
        with pytest.raises(CodecError):
            lzf_decompress(comp, 99)

    def test_overlapping_copy_rle(self):
        # "aaaa..." encodes as a literal 'a' + self-overlapping reference;
        # the decoder must copy byte-at-a-time.
        data = b"a" * 300
        comp = lzf_compress(data)
        assert lzf_decompress(comp, len(data)) == data


class TestCodecInterface:
    def test_codec_roundtrip_and_name(self):
        codec = LzfCodec()
        assert codec.name == "lzf"
        data = b"The quick brown fox. " * 100
        assert codec.decompress(codec.compress(data), len(data)) == data

    def test_ratio_helper(self):
        codec = LzfCodec()
        assert codec.ratio(b"") == 1.0
        assert codec.ratio(b"z" * 10_000) > 10


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=4096))
def test_roundtrip_property(data):
    assert lzf_decompress(lzf_compress(data), len(data)) == data


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=500))
def test_roundtrip_repeated_blocks(block, reps):
    data = block * reps
    assert lzf_decompress(lzf_compress(data), len(data)) == data


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=2048))
def test_compress_never_inflates_much(data):
    comp = lzf_compress(data)
    # Worst case: pure literals, 1 control byte per 32 payload bytes
    # (plus one for a trailing partial run).
    assert len(comp) <= len(data) + len(data) // 32 + 2


class TestVectorizedEncoderIdentity:
    """The numpy fast path must be *bit-identical* to the reference
    encoder — same hash table, same overwrite-on-store collisions, same
    greedy matches — so golden wire fixtures cannot tell them apart."""

    def _corpora(self):
        from repro.data import (
            ascii_data,
            binary_data,
            incompressible_data,
            synthetic_hb_bytes,
        )

        yield "text", ascii_data(64 * 1024, seed=3)
        yield "binary", binary_data(64 * 1024, seed=4)
        yield "random", incompressible_data(64 * 1024, seed=5)
        yield "hb", synthetic_hb_bytes(n=9000, seed=6)
        yield "rle", b"ab" * (32 * 1024)
        yield "allbytes", bytes(range(256)) * 200

    def test_bit_identical_to_reference_on_corpora(self):
        from repro.compress.lzf import _compress_ref

        for name, data in self._corpora():
            d = bytes(data)
            assert lzf_compress(d) == _compress_ref(d, len(d)), name

    @settings(max_examples=150, deadline=None)
    @given(st.binary(min_size=0, max_size=3000))
    def test_bit_identical_to_reference_property(self, data):
        from repro.compress.lzf import _compress_ref

        assert lzf_compress(data) == _compress_ref(data, len(data))

    @pytest.mark.parametrize("n", [0, 1, 3, 4, 511, 512, 513, 8192])
    def test_threshold_boundaries(self, n):
        from repro.compress.lzf import _compress_ref

        from repro.data import ascii_data

        data = ascii_data(n, seed=n or 1)
        comp = lzf_compress(data)
        assert comp == _compress_ref(data, len(data))
        assert lzf_decompress(comp, len(data)) == data


class TestSliceApi:
    """``lzf_compress_slices``: the streaming form the packetizer uses."""

    @pytest.mark.parametrize("slice_size", [2048, 8192])
    def test_slices_cover_input_and_match_whole_buffer_compression(
        self, slice_size
    ):
        from repro.compress.lzf import lzf_compress_slices

        from repro.data import ascii_data

        data = ascii_data(50_000, seed=8)
        pos = 0
        for start, end, comp in lzf_compress_slices(data, slice_size):
            assert start == pos
            assert end - start <= slice_size
            # Identical to compressing the slice standalone: the hash
            # chains must not leak across slice boundaries.
            assert comp == lzf_compress(data[start:end])
            assert lzf_decompress(comp, end - start) == data[start:end]
            pos = end
        assert pos == len(data)

    def test_short_input_single_slice(self):
        from repro.compress.lzf import lzf_compress_slices

        data = b"tiny"
        out = list(lzf_compress_slices(data, 8192))
        assert len(out) == 1
        start, end, comp = out[0]
        assert (start, end) == (0, 4)
        assert lzf_decompress(comp, 4) == data

    def test_empty_input_yields_nothing(self):
        from repro.compress.lzf import lzf_compress_slices

        assert list(lzf_compress_slices(b"", 8192)) == []

    @settings(max_examples=60, deadline=None)
    @given(
        st.binary(min_size=1, max_size=40_000),
        st.sampled_from([1024, 4096, 8192]),
    )
    def test_slice_roundtrip_property(self, data, slice_size):
        from repro.compress.lzf import lzf_compress_slices

        out = bytearray()
        for start, end, comp in lzf_compress_slices(data, slice_size):
            out += lzf_decompress(comp, end - start)
        assert bytes(out) == data
