"""TimerWheel: hashed buckets, deadline cache, cancellation reclaim."""

from __future__ import annotations

from repro.serve.reactor import TimerHandle, TimerWheel


def _handle(deadline: float) -> TimerHandle:
    return TimerHandle(deadline, lambda: None)


def test_empty_wheel_has_no_deadline():
    wheel = TimerWheel()
    assert wheel.next_deadline() is None
    assert wheel.expire(100.0) == []
    assert len(wheel) == 0


def test_add_and_expire_in_deadline_order():
    wheel = TimerWheel(granularity_s=0.01)
    late, early, mid = _handle(1.30), _handle(1.10), _handle(1.20)
    for h in (late, early, mid):
        wheel.add(h)
    assert wheel.next_deadline() == 1.10
    due = wheel.expire(2.0)
    assert due == [early, mid, late]
    assert len(wheel) == 0


def test_expire_only_pops_due_timers():
    wheel = TimerWheel(granularity_s=0.01)
    soon, later = _handle(1.0), _handle(5.0)
    wheel.add(soon)
    wheel.add(later)
    assert wheel.expire(1.5) == [soon]
    assert len(wheel) == 1
    assert wheel.next_deadline() == 5.0
    assert wheel.expire(6.0) == [later]


def test_cancelled_timer_never_fires_and_is_reclaimed():
    wheel = TimerWheel(granularity_s=0.01)
    h = _handle(1.0)
    wheel.add(h)
    h.cancel()
    assert wheel.expire(2.0) == []
    assert len(wheel) == 0


def test_clock_jump_past_a_full_revolution_expires_everything():
    # 8 slots x 10ms = an 80ms revolution; timers spread across it all
    # come due after one jump far beyond the wheel's span.
    wheel = TimerWheel(granularity_s=0.01, slots=8)
    handles = [_handle(1.0 + i * 0.05) for i in range(16)]
    for h in handles:
        wheel.add(h)
    due = wheel.expire(1000.0)
    assert due == sorted(handles, key=lambda h: h.deadline)
    assert len(wheel) == 0


def test_deadline_cache_recomputes_after_expiry():
    wheel = TimerWheel(granularity_s=0.01)
    wheel.add(_handle(1.0))
    wheel.add(_handle(3.0))
    assert wheel.next_deadline() == 1.0
    wheel.expire(1.5)
    assert wheel.next_deadline() == 3.0


def test_same_bucket_collision_keeps_future_timer():
    # Two deadlines one revolution apart hash into the same slot; only
    # the due one pops.
    wheel = TimerWheel(granularity_s=0.01, slots=4)
    near, far = _handle(1.0), _handle(1.0 + 4 * 0.01)
    wheel.add(near)
    wheel.add(far)
    assert wheel.expire(1.005) == [near]
    assert len(wheel) == 1
    assert wheel.expire(2.0) == [far]
