"""Channels: roundtrips, blocking-engine interop, wire byte-identity."""

from __future__ import annotations

import threading

import pytest

from repro.core import AdocConfig
from repro.core.api import adoc_attach, adoc_detach, adoc_read, adoc_write
from repro.core.sender import MessageSender, raw_message_vectors
from repro.data import ascii_data
from repro.serve.channel import AdocChannel, NonBlockingEndpoint, PlainChannel
from repro.serve.pool import WorkerPool
from repro.serve.reactor import Reactor
from repro.transport import socketpair_endpoints

from .test_reactor import run_on_loop

#: Small buffers so even modest payloads exercise the chunk pipeline;
#: no io timeout — these tests assert logic, not stall detection.
CFG = AdocConfig(
    buffer_size=16 * 1024,
    packet_size=2 * 1024,
    slice_size=2 * 1024,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    io_timeout_s=None,
)
#: max_level=0 disables compression outright: the deterministic wire
#: shape shared byte-for-byte by both engines.
RAW_CFG = AdocConfig(
    min_level=0,
    max_level=0,
    small_message_threshold=8 * 1024,
    probe_size=4 * 1024,
    io_timeout_s=None,
)


@pytest.fixture
def loop(no_thread_leaks):
    reactor = Reactor(name="chan-test")
    pool = WorkerPool(workers=2, max_pending=64, name="chan-pool")
    reactor.run_in_thread()
    yield reactor, pool
    reactor.close()
    pool.close()


class Collector:
    """Reassemble messages at the boundaries the channel reports.

    ``on_data``/``on_message_end`` run on the loop thread; the chunk
    buffer is cut into a finished payload at each boundary there, so a
    test thread waiting on message N never races message N+1's bytes.
    """

    def __init__(self) -> None:
        self.chunks: list[bytes] = []
        self.payloads: list[bytes] = []
        self.messages = 0
        self.closed = threading.Event()
        self.close_error: BaseException | None = None
        self._cond = threading.Condition()

    def on_data(self, data: bytes) -> None:
        self.chunks.append(bytes(data))

    def on_message_end(self) -> None:
        with self._cond:
            self.payloads.append(b"".join(self.chunks))
            self.chunks.clear()
            self.messages += 1
            self._cond.notify_all()

    def on_close(self, error: BaseException | None) -> None:
        self.close_error = error
        self.closed.set()

    def wait_message(self, index: int = 0, timeout: float = 10.0) -> bytes:
        with self._cond:
            arrived = self._cond.wait_for(
                lambda: len(self.payloads) > index, timeout
            )
            assert arrived, f"message {index} never finished"
            return self.payloads[index]


def _wire(loop, cls, endpoint, collector, config=CFG, **kwargs):
    reactor, pool = loop
    if cls is AdocChannel:
        channel = cls(reactor, endpoint, pool, config)
        channel.on_message_end = collector.on_message_end
    else:
        channel = cls(reactor, endpoint, config)
    channel.on_data = collector.on_data
    channel.on_close = collector.on_close
    run_on_loop(reactor, channel.open)
    return channel


def test_plain_channels_pass_raw_bytes_both_ways(loop):
    reactor, _ = loop
    a, b = socketpair_endpoints()
    ca, cb = Collector(), Collector()
    cha = _wire(loop, PlainChannel, a, ca)
    chb = _wire(loop, PlainChannel, b, cb)
    run_on_loop(reactor, lambda: cha.send_message(b"ping"))
    run_on_loop(reactor, lambda: chb.send_message(b"pong"))
    deadline = threading.Event()
    for collector, expect in ((cb, b"ping"), (ca, b"pong")):
        for _ in range(1000):
            if b"".join(collector.chunks) == expect:
                break
            deadline.wait(0.01)
        assert b"".join(collector.chunks) == expect
    run_on_loop(reactor, cha.close)
    # Closing one side EOFs the other; its channel closes cleanly.
    assert cb.closed.wait(10.0)
    assert cb.close_error is None


def test_adoc_channel_roundtrip_compressed(loop):
    reactor, _ = loop
    a, b = socketpair_endpoints()
    ca, cb = Collector(), Collector()
    # Pinning min == max forces compression at a fixed level: the wire
    # must shrink regardless of how fast the backlog drains.
    forced = CFG.with_levels(6, 6)
    cha = _wire(loop, AdocChannel, a, ca, config=forced)
    chb = _wire(loop, AdocChannel, b, cb, config=forced)
    payload = ascii_data(300 * 1024, seed=3)
    run_on_loop(reactor, lambda: cha.send_message(payload))
    assert cb.wait_message() == payload
    assert cb.messages == 1
    assert cha.messages_out == 1 and chb.messages_in == 1
    # Compressible ASCII must actually compress on the wire.
    assert cha.bytes_out < len(payload)
    run_on_loop(reactor, cha.close)
    run_on_loop(reactor, chb.close)


def test_adoc_channel_queues_messages_while_tx_busy(loop):
    reactor, _ = loop
    a, b = socketpair_endpoints()
    ca, cb = Collector(), Collector()
    cha = _wire(loop, AdocChannel, a, ca)
    chb = _wire(loop, AdocChannel, b, cb)
    payloads = [ascii_data(100 * 1024, seed=i) for i in range(3)]

    def send_all() -> None:
        for p in payloads:
            cha.send_message(p)

    run_on_loop(reactor, send_all)
    for i, expected in enumerate(payloads):
        assert cb.wait_message(i) == expected
    assert chb.messages_in == 3
    run_on_loop(reactor, cha.close)
    run_on_loop(reactor, chb.close)


def test_reactor_sender_interops_with_blocking_reader(loop):
    # AdocChannel frames on one end, the blocking adoc_read engine
    # consumes on the other: wire compatibility by construction.
    reactor, _ = loop
    a, b = socketpair_endpoints()
    cha = _wire(loop, AdocChannel, a, Collector())
    fd = adoc_attach(b, CFG)
    payload = ascii_data(250 * 1024, seed=11)
    try:
        run_on_loop(reactor, lambda: cha.send_message(payload))
        got = bytearray()
        while len(got) < len(payload):
            got += adoc_read(fd, len(payload) - len(got))
        assert bytes(got) == payload
    finally:
        run_on_loop(reactor, cha.close)
        adoc_detach(fd)
        b.close()


def test_blocking_sender_interops_with_reactor_reader(loop):
    reactor, _ = loop
    a, b = socketpair_endpoints()
    cb = Collector()
    chb = _wire(loop, AdocChannel, b, cb)
    fd = adoc_attach(a, CFG)
    payload = ascii_data(250 * 1024, seed=12)
    try:
        sent = threading.Thread(
            target=adoc_write, args=(fd, payload), name="blocking-writer"
        )
        sent.start()
        sent.join(10.0)
        assert not sent.is_alive()
        assert cb.wait_message() == payload
    finally:
        run_on_loop(reactor, chb.close)
        adoc_detach(fd)
        a.close()


def test_raw_wire_bytes_identical_to_blocking_engine(loop):
    # Golden byte-identity on the deterministic (uncompressed) path:
    # the reactor channel and the blocking MessageSender must emit the
    # same bytes for the same message.
    class Capture:
        def __init__(self) -> None:
            self.buffer = bytearray()

        def send(self, data) -> int:
            self.buffer += data
            return len(data)

        def recv(self, n: int) -> bytes:
            return b""

        def close(self) -> None:
            pass

    payload = ascii_data(64 * 1024, seed=5)
    golden = Capture()
    MessageSender(golden, RAW_CFG).send(payload)

    reactor, _ = loop
    a, b = socketpair_endpoints()
    cha = _wire(
        loop, AdocChannel, a, Collector(),
        config=RAW_CFG,
    )
    run_on_loop(reactor, lambda: cha.send_message(payload))
    wire = bytearray()
    while len(wire) < len(golden.buffer):
        chunk = b.recv(65536)
        assert chunk, "reactor channel sent fewer bytes than the blocking engine"
        wire += chunk
    assert bytes(wire) == bytes(golden.buffer)
    run_on_loop(reactor, cha.close)
    b.close()


def test_small_message_bypass_matches_raw_vectors(loop):
    # Below the small-message threshold the channel frames raw inline —
    # identical to the blocking sender's bypass.
    reactor, _ = loop
    payload = b"tiny but framed"
    expected = b"".join(bytes(v) for v in raw_message_vectors(payload))
    a, b = socketpair_endpoints()
    cha = _wire(loop, AdocChannel, a, Collector())
    run_on_loop(reactor, lambda: cha.send_message(payload))
    wire = bytearray()
    while len(wire) < len(expected):
        chunk = b.recv(65536)
        assert chunk
        wire += chunk
    assert bytes(wire) == expected
    run_on_loop(reactor, cha.close)
    b.close()


def test_endpoint_without_fileno_is_rejected():
    class NotASocket:
        pass

    with pytest.raises(TypeError):
        NonBlockingEndpoint(NotASocket())
