"""Tests for the shared reactor core (:mod:`repro.serve`)."""
