"""Listener + ReactorServer: accept path, socket options, teardown."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.core.config import AdocConfig
from repro.serve.channel import PlainChannel
from repro.serve.reactor import Reactor
from repro.serve.server import DEFAULT_BACKLOG, Listener, ReactorServer

CFG = AdocConfig(io_timeout_s=None)


@pytest.fixture
def server(no_thread_leaks):
    srv = ReactorServer(name="test-server", config=CFG, workers=2)
    yield srv
    srv.close()


def echo_factory(server: ReactorServer):
    """Channel factory wiring a byte-echo on every accepted connection."""

    def factory(endpoint, addr):
        channel = PlainChannel(server.reactor, endpoint, server.config)
        channel.on_data = channel.send_message
        return channel

    return factory


def test_listener_sets_so_reuseaddr_and_binds(no_thread_leaks):
    reactor = Reactor(name="lst")
    reactor.run_in_thread()
    try:
        listener = Listener(reactor, "127.0.0.1", 0, lambda ep, addr: ep.close())
        try:
            assert listener.address[1] > 0
            assert (
                listener._sock.getsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEADDR
                )
                != 0
            )
        finally:
            listener.close()
    finally:
        reactor.close()


def test_listener_accepts_and_hands_over_nonblocking_endpoints(no_thread_leaks):
    reactor = Reactor(name="lst2")
    reactor.run_in_thread()
    accepted = threading.Event()
    seen: list = []

    def on_accept(endpoint, addr) -> None:
        seen.append((endpoint, addr))
        endpoint.close()
        accepted.set()

    listener = Listener(reactor, "127.0.0.1", 0, on_accept, backlog=16)
    try:
        with socket.create_connection(listener.address, timeout=5.0):
            assert accepted.wait(5.0)
        assert listener.accepted == 1
        endpoint, addr = seen[0]
        assert addr[0] == "127.0.0.1"
    finally:
        listener.close()
        reactor.close()


def test_reactor_server_echoes_and_counts_connections(server):
    address = server.listen("127.0.0.1", 0, echo_factory(server))
    with socket.create_connection(address, timeout=5.0) as sock:
        sock.sendall(b"hello reactor")
        got = bytearray()
        while len(got) < len(b"hello reactor"):
            chunk = sock.recv(1024)
            assert chunk
            got += chunk
        assert bytes(got) == b"hello reactor"
        deadline = threading.Event()
        for _ in range(500):
            if server.connection_count == 1:
                break
            deadline.wait(0.01)
        assert server.connection_count == 1
    # Channel EOF untracks the connection.
    for _ in range(500):
        if server.connection_count == 0:
            break
        deadline.wait(0.01)
    assert server.connection_count == 0


def test_reactor_server_serves_many_sockets_on_one_thread(server):
    address = server.listen("127.0.0.1", 0, echo_factory(server))
    before = threading.active_count()
    socks = [socket.create_connection(address, timeout=5.0) for _ in range(32)]
    try:
        for i, sock in enumerate(socks):
            sock.sendall(f"conn-{i}".encode())
        for i, sock in enumerate(socks):
            expected = f"conn-{i}".encode()
            got = bytearray()
            while len(got) < len(expected):
                chunk = sock.recv(1024)
                assert chunk
                got += chunk
            assert bytes(got) == expected
        # The whole fan-in rode the existing loop thread: no per
        # connection threads appeared.
        assert threading.active_count() <= before
    finally:
        for sock in socks:
            sock.close()


def test_custom_backlog_and_default(server):
    addr_default = server.listen("127.0.0.1", 0, echo_factory(server))
    addr_small = server.listen(
        "127.0.0.1", 0, echo_factory(server), backlog=4
    )
    assert addr_default != addr_small
    assert DEFAULT_BACKLOG == 512
    for addr in (addr_default, addr_small):
        with socket.create_connection(addr, timeout=5.0) as sock:
            sock.sendall(b"x")
            assert sock.recv(1) == b"x"


def test_close_refuses_new_connections_and_is_idempotent(no_thread_leaks):
    srv = ReactorServer(name="closing-server", config=CFG, workers=2)
    address = srv.listen("127.0.0.1", 0, echo_factory(srv))
    srv.close()
    srv.close()
    with pytest.raises(OSError):
        socket.create_connection(address, timeout=0.5).close()


def test_close_tears_down_live_channels(no_thread_leaks):
    srv = ReactorServer(name="teardown-server", config=CFG, workers=2)
    address = srv.listen("127.0.0.1", 0, echo_factory(srv))
    sock = socket.create_connection(address, timeout=5.0)
    try:
        sock.sendall(b"x")
        assert sock.recv(1) == b"x"
        assert srv.connection_count == 1
        srv.close()
        assert srv.connection_count == 0
        # Server side closed the channel: the client sees EOF.
        sock.settimeout(5.0)
        assert sock.recv(1) == b""
    finally:
        sock.close()


def test_shared_reactor_and_pool_are_not_closed(no_thread_leaks):
    reactor = Reactor(name="shared")
    reactor.run_in_thread()
    from repro.serve.pool import WorkerPool

    pool = WorkerPool(workers=2, name="shared-pool")
    try:
        srv = ReactorServer(
            name="guest", config=CFG, reactor=reactor, pool=pool
        )
        srv.listen("127.0.0.1", 0, echo_factory(srv))
        srv.close()
        # Borrowed infrastructure survives the guest server's close.
        assert not pool.closed
        done = threading.Event()
        reactor.call_soon_threadsafe(done.set)
        assert done.wait(5.0)
    finally:
        pool.close()
        reactor.close()
