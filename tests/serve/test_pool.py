"""WorkerPool: bounded queue, keyed in-order delivery, teardown."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.deadlines import DeadlineExceeded
from repro.serve.pool import PoolClosed, WorkerPool


@pytest.fixture
def pool(no_thread_leaks):
    p = WorkerPool(workers=4, max_pending=32, name="test-pool")
    yield p
    p.close()


def test_jobs_run_and_results_reach_on_done(pool):
    results: list[int] = []
    done = threading.Event()
    lock = threading.Lock()

    def on_done(result, error) -> None:
        assert error is None
        with lock:
            results.append(result)
            if len(results) == 16:
                done.set()

    for i in range(16):
        pool.submit(lambda i=i: i * i, on_done=on_done)
    assert done.wait(10.0)
    assert sorted(results) == [i * i for i in range(16)]
    assert pool.stats()["completed"] == 16


def test_keyed_completions_deliver_in_submission_order(pool):
    # Jobs sleep random amounts so workers finish out of order; the
    # per-key reorder buffer must still deliver 0..N-1 in sequence.
    rng = random.Random(7)
    delivered: list[int] = []
    done = threading.Event()

    def job(i: int) -> int:
        time.sleep(rng.random() * 0.02)
        return i

    # Delivery callbacks for one key never interleave, so the plain
    # list append below is order-faithful.
    def on_done(result, error) -> None:
        delivered.append(result)
        if len(delivered) == 24:
            done.set()

    for i in range(24):
        pool.submit(job, i, key="conn-1", on_done=on_done)
    assert done.wait(10.0)
    assert delivered == list(range(24))


def test_key_state_is_reclaimed_after_the_last_delivery(pool):
    done = threading.Event()
    pool.submit(lambda: None, key="ephemeral", on_done=lambda r, e: done.set())
    assert done.wait(10.0)
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        with pool._lock:
            if "ephemeral" not in pool._keys:
                return
        time.sleep(0.01)
    pytest.fail("per-key reorder state leaked after delivery")


def test_try_submit_returns_false_when_full(no_thread_leaks):
    pool = WorkerPool(workers=1, max_pending=2, name="tiny-pool")
    release = threading.Event()
    try:
        # One job occupies the worker; two more fill the queue.
        pool.submit(release.wait)
        deadline = time.monotonic() + 5.0
        while pool.stats()["busy"] == 0:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        assert pool.try_submit(lambda: None)
        assert pool.try_submit(lambda: None)
        assert not pool.try_submit(lambda: None)
    finally:
        release.set()
        pool.close()


def test_blocking_submit_times_out_with_deadline_exceeded(no_thread_leaks):
    pool = WorkerPool(workers=1, max_pending=1, name="stuck-pool")
    release = threading.Event()
    try:
        pool.submit(release.wait)
        deadline = time.monotonic() + 5.0
        while pool.stats()["busy"] == 0:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        pool.submit(lambda: None)  # fills the queue
        with pytest.raises(DeadlineExceeded):
            pool.submit(lambda: None, timeout=0.05)
    finally:
        release.set()
        pool.close()


def test_job_exceptions_are_delivered_not_raised(pool):
    outcome: list = []
    done = threading.Event()

    def on_done(result, error) -> None:
        outcome.append((result, error))
        done.set()

    def boom() -> None:
        raise ValueError("job failed")

    pool.submit(boom, on_done=on_done)
    assert done.wait(10.0)
    result, error = outcome[0]
    assert result is None
    assert isinstance(error, ValueError)


def test_submit_after_close_raises_pool_closed(no_thread_leaks):
    pool = WorkerPool(workers=2, name="closed-pool")
    pool.close()
    with pytest.raises(PoolClosed):
        pool.submit(lambda: None)
    with pytest.raises(PoolClosed):
        pool.try_submit(lambda: None)


def test_close_drains_queued_jobs_by_default(no_thread_leaks):
    pool = WorkerPool(workers=1, max_pending=64, name="drain-pool")
    ran: list[int] = []
    gate = threading.Event()
    pool.submit(gate.wait)
    for i in range(8):
        pool.submit(lambda i=i: ran.append(i))
    gate.set()
    pool.close()
    assert sorted(ran) == list(range(8))


def test_close_without_drain_fails_pending_jobs(no_thread_leaks):
    pool = WorkerPool(workers=1, max_pending=64, name="abort-pool")
    errors: list = []
    gate = threading.Event()
    pool.submit(gate.wait)
    deadline = time.monotonic() + 5.0
    while pool.stats()["busy"] == 0:
        assert time.monotonic() < deadline
        time.sleep(0.005)
    for _ in range(4):
        pool.submit(lambda: None, on_done=lambda r, e: errors.append(e))
    gate.set()
    pool.close(drain=False)
    assert len(errors) == 4
    assert all(isinstance(e, PoolClosed) for e in errors)


def test_close_is_idempotent(no_thread_leaks):
    pool = WorkerPool(workers=2, name="idem-pool")
    pool.close()
    pool.close()
