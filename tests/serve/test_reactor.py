"""Reactor: scheduling surfaces, wakeup, error isolation, teardown."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.serve.reactor import EVENT_READ, Reactor


@pytest.fixture
def reactor(no_thread_leaks):
    r = Reactor(name="test")
    r.run_in_thread()
    yield r
    r.close()


def run_on_loop(reactor: Reactor, fn, timeout: float = 5.0):
    """Run ``fn`` on the loop thread, returning its result."""
    done = threading.Event()
    box: list = [None, None]

    def call() -> None:
        try:
            box[0] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box[1] = exc
        finally:
            done.set()

    reactor.call_soon_threadsafe(call)
    assert done.wait(timeout), "loop thread never ran the callback"
    if box[1] is not None:
        raise box[1]
    return box[0]


def test_call_soon_threadsafe_runs_in_fifo_order(reactor):
    order: list[int] = []
    done = threading.Event()
    for i in range(10):
        reactor.call_soon_threadsafe(lambda i=i: order.append(i))
    reactor.call_soon_threadsafe(done.set)
    assert done.wait(5.0)
    assert order == list(range(10))


def test_call_soon_threadsafe_wakes_a_parked_select(reactor):
    # No fds, no timers: the loop parks in select(None).  A cross-thread
    # callback must still run promptly via the self-pipe.
    time.sleep(0.05)  # let the loop park
    t0 = time.monotonic()
    done = threading.Event()
    reactor.call_soon_threadsafe(done.set)
    assert done.wait(5.0)
    assert time.monotonic() - t0 < 1.0


def test_call_later_fires_after_the_delay(reactor):
    fired = threading.Event()
    t0 = time.monotonic()
    run_on_loop(reactor, lambda: reactor.call_later(0.05, fired.set))
    assert fired.wait(5.0)
    assert time.monotonic() - t0 >= 0.045


def test_cancelled_timer_never_fires(reactor):
    fired = threading.Event()
    handle = run_on_loop(reactor, lambda: reactor.call_later(0.05, fired.set))
    run_on_loop(reactor, handle.cancel)
    assert not fired.wait(0.2)


def test_callback_exception_is_counted_not_fatal(reactor):
    def boom() -> None:
        raise RuntimeError("one bad connection")

    reactor.call_soon_threadsafe(boom)
    survived = threading.Event()
    reactor.call_soon_threadsafe(survived.set)
    assert survived.wait(5.0)
    assert reactor.callback_errors == 1


def test_readiness_callback_sees_the_ready_fd(reactor):
    a, b = socket.socketpair()
    try:
        a.setblocking(False)
        got: list[bytes] = []
        read = threading.Event()

        def on_readable(mask: int) -> None:
            assert mask & EVENT_READ
            got.append(a.recv(64))
            read.set()

        run_on_loop(
            reactor, lambda: reactor.register(a, EVENT_READ, on_readable)
        )
        assert reactor.registered_count == 1
        b.sendall(b"ping")
        assert read.wait(5.0)
        assert got == [b"ping"]
        run_on_loop(reactor, lambda: reactor.unregister(a))
        assert reactor.registered_count == 0
    finally:
        a.close()
        b.close()


def test_requeueing_callback_yields_to_the_next_iteration(reactor):
    # The loop drains only what was queued at entry, so a self-requeuing
    # callback cannot monopolise an iteration.
    iterations: list[int] = []
    done = threading.Event()

    def tick(n: int) -> None:
        iterations.append(reactor.iterations)
        if n > 0:
            reactor.call_soon(lambda: tick(n - 1))
        else:
            done.set()

    reactor.call_soon_threadsafe(lambda: tick(3))
    assert done.wait(5.0)
    assert len(set(iterations)) == len(iterations), (
        "self-requeued callbacks ran inside one loop iteration"
    )


def test_close_is_idempotent_and_joins_the_loop(no_thread_leaks):
    r = Reactor(name="closing")
    thread = r.run_in_thread()
    r.close()
    assert not thread.is_alive()
    r.close()  # second close is a no-op
