#!/usr/bin/env python3
"""Watch the Figure-2 controller adapt, decision by decision.

Simulates one 16 MB ASCII transfer over Renater and prints every level
update: queue length, its variation, the raw Figure-2 proposal, and the
level actually used after the guards — an ASCII rendering of what the
paper's Figure 2 does at runtime.

Usage::

    python examples/adaptation_trace.py [--network renater] [--data ascii]
"""

from __future__ import annotations

import argparse

from repro import ALL_PROFILES
from repro.core.adaptation import LevelAdapter
from repro.simulator import profile_by_name, simulate_adoc_message, simulate_posix_message

MB = 1024 * 1024


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", choices=sorted(ALL_PROFILES), default="renater")
    parser.add_argument(
        "--data", choices=("ascii", "binary", "incompressible", "sparse", "dense"),
        default="ascii",
    )
    parser.add_argument("--size-mb", type=int, default=16)
    args = parser.parse_args()

    profile = ALL_PROFILES[args.network]
    data = profile_by_name(args.data)
    adapters: list[LevelAdapter] = []

    def factory(cfg, div, inc):
        adapter = LevelAdapter(cfg, div, inc)
        adapters.append(adapter)
        return adapter

    result = simulate_adoc_message(
        args.size_mb * MB, data, profile, seed=7, adapter_factory=factory
    )
    base = simulate_posix_message(args.size_mb * MB, profile, seed=7)

    print(f"{args.size_mb} MB of {args.data} data over {args.network}:")
    if not adapters:
        print("  (pipeline never started: small message or fast network)")
    else:
        print(f"  {'buf':>4} {'queue':>5} {'delta':>5} {'fig2':>4} {'used':>4}  bar")
        for i, t in enumerate(adapters[0].history):
            flags = "D" if t.forbidden else ("G" if t.holdoff else " ")
            bar = "#" * t.level
            print(
                f"  {i:>4} {t.queue_size:>5} {t.delta:>+5} {t.raw_level:>4} "
                f"{t.level:>4} {flags} {bar}"
            )
    print(
        f"\nwire: {result.wire_bytes / MB:.2f} MB "
        f"(ratio {result.compression_ratio:.2f}), "
        f"time {result.elapsed_s:.2f}s vs POSIX {base.elapsed_s:.2f}s "
        f"-> speedup x{base.elapsed_s / result.elapsed_s:.2f}"
    )
    print("flags: D = divergence guard vetoed, G = incompressible-guard holdoff")


if __name__ == "__main__":
    main()
