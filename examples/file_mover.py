#!/usr/bin/env python3
"""File mover: ship files over TCP with adaptive online compression.

This is the paper's data-mover use case (IBP / gridFTP direction): the
same program acts as receiver (``serve``) or sender (``send``), moving
whole files through ``adoc_send_file`` / ``adoc_receive_file`` over a
real loopback-or-LAN TCP connection.

Demo on one machine::

    python examples/file_mover.py demo

Or across two terminals::

    python examples/file_mover.py serve --port 9099 --out-dir /tmp/recv
    python examples/file_mover.py send  --port 9099 myfile.dat more.dat
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro import AdocSocket
from repro.data import synthetic_hb_bytes, synthetic_tar_bytes


def serve(host: str, port: int, out_dir: Path, expected: int | None = None) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(1)
    print(f"[recv] listening on {host}:{port}, storing into {out_dir}")
    conn, peer = listener.accept()
    print(f"[recv] connection from {peer}")
    rx = AdocSocket(conn)
    count = 0
    try:
        while expected is None or count < expected:
            # Tiny name header first, then the file as one AdOC message.
            name_len = rx.read_exact(2)
            if len(name_len) < 2:
                break
            name = rx.read_exact(int.from_bytes(name_len, "big")).decode()
            target = out_dir / Path(name).name
            with target.open("wb") as f:
                n = rx.receive_file(f)
            print(f"[recv] {name}: {n} bytes")
            count += 1
    finally:
        rx.close()
        listener.close()


def send(host: str, port: int, paths: list[Path]) -> None:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.connect((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    tx = AdocSocket(sock)
    try:
        for path in paths:
            name = path.name.encode()
            tx.write(len(name).to_bytes(2, "big") + name)
            t0 = time.monotonic()
            with path.open("rb") as f:
                size, slen = tx.send_file(f)
            elapsed = time.monotonic() - t0
            print(
                f"[send] {path.name}: {size} bytes -> {slen} on the wire "
                f"(ratio {size / slen:.2f}) in {elapsed:.2f}s"
            )
    finally:
        tx.close()


def demo() -> None:
    """Move the two Table-1 bench files through a real TCP loopback."""
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        src = tmp_path / "src"
        src.mkdir()
        (src / "oilpann.hb").write_bytes(synthetic_hb_bytes(n=3000, band=5, seed=1))
        (src / "bin.tar").write_bytes(
            synthetic_tar_bytes(n_members=4, member_size=150_000, seed=1)
        )
        out = tmp_path / "recv"
        port = _free_port()
        server = threading.Thread(
            target=serve, args=("127.0.0.1", port, out, 2), daemon=True
        )
        server.start()
        time.sleep(0.2)
        send("127.0.0.1", port, sorted(src.iterdir()))
        server.join(timeout=30)
        for f in sorted(src.iterdir()):
            got = (out / f.name).read_bytes()
            assert got == f.read_bytes(), f"{f.name} corrupted"
        print("[demo] all files verified identical")


def _free_port() -> int:
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_serve = sub.add_parser("serve")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=9099)
    p_serve.add_argument("--out-dir", type=Path, default=Path("received"))
    p_send = sub.add_parser("send")
    p_send.add_argument("--host", default="127.0.0.1")
    p_send.add_argument("--port", type=int, default=9099)
    p_send.add_argument("files", nargs="+", type=Path)
    sub.add_parser("demo")
    args = parser.parse_args()

    if args.cmd == "serve":
        serve(args.host, args.port, args.out_dir)
    elif args.cmd == "send":
        send(args.host, args.port, args.files)
    else:
        demo()


if __name__ == "__main__":
    main()
