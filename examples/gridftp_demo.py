#!/usr/bin/env python3
"""gridFTP-lite demo: the compression option, on and off.

Starts the mini-gridFTP server, uploads the two Table-1 bench files
over a shaped WAN in PLAIN mode and again in ADOC mode (optionally with
parallel stripes), and prints the wire sizes — the paper's "as in FTP a
compression option is available" future-work item, working.

Usage::

    python examples/gridftp_demo.py [--stripes 2] [--profile renater]
"""

from __future__ import annotations

import argparse
import dataclasses
import time

from repro import ALL_PROFILES, AdocConfig
from repro.data import synthetic_hb_bytes, synthetic_tar_bytes
from repro.gridftp import FileClient, FileServer

#: Real gridFTP moves gigabytes; this demo moves a few hundred KB, so
#: scale AdOC's size thresholds down accordingly (the defaults would
#: classify every chunk as a "small message" and skip compression).
DEMO_CFG = AdocConfig(
    buffer_size=32 * 1024,
    packet_size=4 * 1024,
    slice_size=4 * 1024,
    small_message_threshold=32 * 1024,
    probe_size=16 * 1024,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stripes", type=int, default=2)
    parser.add_argument("--profile", choices=sorted(ALL_PROFILES), default="renater")
    args = parser.parse_args()

    profile = ALL_PROFILES[args.profile]
    if profile.bandwidth_bps < 50e6:
        profile = profile.scaled(10)  # keep the demo quick
    # Demo-scale the socket buffer along with the message sizes: the
    # bandwidth probe can only measure the line rate if it overflows
    # the send buffer (DESIGN.md, "Fast-network probe").
    profile = dataclasses.replace(profile, buffer_bytes=8 * 1024)

    files = {
        "oilpann.hb": synthetic_hb_bytes(n=2500, band=5, seed=1),
        "bin.tar": synthetic_tar_bytes(n_members=3, member_size=120_000, seed=1),
    }

    seed_counter = [0]

    def factory():
        seed_counter[0] += 1
        return profile.make_pair(seed=seed_counter[0])

    server = FileServer(factory, config=DEMO_CFG, chunk_size=512 * 1024)
    client = FileClient(server, config=DEMO_CFG)
    client.set_stripes(args.stripes)

    print(
        f"gridftp-lite over shaped {args.profile} "
        f"({profile.bandwidth_bps / 1e6:.0f} Mbit/s), {args.stripes} stripe(s)\n"
    )
    for mode in ("PLAIN", "ADOC"):
        client.set_mode(mode)
        for name, data in files.items():
            t0 = time.monotonic()
            report = client.store(f"{mode.lower()}-{name}", data)
            elapsed = time.monotonic() - t0
            print(
                f"  {mode:<5} STOR {name:<11} {len(data) / 1024:7.0f} KB -> "
                f"{report.wire_bytes / 1024:7.0f} KB on the wire "
                f"(ratio {report.compression_ratio:4.2f}) in {elapsed:5.2f}s"
            )

    # Round-trip check: download one file back in ADOC mode.
    got = client.retrieve("adoc-oilpann.hb")
    assert got == files["oilpann.hb"], "retrieve corrupted the file"
    print("\nRETR adoc-oilpann.hb verified byte-identical")
    print("catalog:", client.list_files())
    client.quit()


if __name__ == "__main__":
    main()
