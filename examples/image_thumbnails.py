#!/usr/bin/env python3
"""Lossy thumbnail transfer — the paper's future-work extension, live.

A "gallery server" holds a set of images; the client browses thumbnails
(the cheapest lossy rendition, shipped over AdOC) and then fetches one
image at full fidelity.  Prints wire sizes and PSNR per resolution
level, demonstrating the resolution/accuracy ladder the paper sketches
in its conclusion.

Usage::

    python examples/image_thumbnails.py [--images 4] [--size 256]
"""

from __future__ import annotations

import argparse
import threading

from repro import AdocSocket, RENATER
from repro.compress.lossy import (
    RESOLUTION_LEVELS,
    compress_image,
    decompress_image,
    psnr,
)
from repro.data.images import synthetic_image


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--images", type=int, default=4)
    parser.add_argument("--size", type=int, default=256)
    args = parser.parse_args()

    images = [
        synthetic_image(args.size, args.size, channels=3, seed=i)
        for i in range(args.images)
    ]
    raw_bytes = args.size * args.size * 3

    print(f"gallery: {args.images} images of {args.size}x{args.size} RGB "
          f"({raw_bytes / 1024:.0f} KB raw each)\n")
    print("resolution ladder for image 0:")
    for level in range(len(RESOLUTION_LEVELS)):
        encoded = compress_image(images[0], level)
        restored = decompress_image(encoded)
        quality = psnr(images[0], restored)
        q = "inf" if quality == float("inf") else f"{quality:5.1f} dB"
        print(
            f"  level {level}: {len(encoded) / 1024:7.1f} KB "
            f"({raw_bytes / len(encoded):6.1f}x smaller), PSNR {q}"
        )

    # Browse-then-fetch over an AdOC link (shaped WAN, scaled for demo).
    profile = RENATER.scaled(10)
    a, b = profile.make_pair(seed=2)
    server, client = AdocSocket(a), AdocSocket(b)
    thumb_level = len(RESOLUTION_LEVELS) - 1

    def gallery_server() -> None:
        # Ship every thumbnail, then wait for a pick, then the original.
        for img in images:
            data = compress_image(img, thumb_level)
            server.write(len(data).to_bytes(4, "big") + data)
        pick = int.from_bytes(server.read(1), "big")
        full = compress_image(images[pick], 0)
        server.write(len(full).to_bytes(4, "big") + full)

    t = threading.Thread(target=gallery_server, daemon=True)
    t.start()

    thumbs = []
    wire_total = 0
    for _ in images:
        n = int.from_bytes(client.read_exact(4), "big")
        wire_total += n + 4
        thumbs.append(decompress_image(client.read_exact(n)))
    print(f"\nbrowsed {len(thumbs)} thumbnails over AdOC: "
          f"{wire_total / 1024:.1f} KB total "
          f"(vs {len(images) * raw_bytes / 1024:.0f} KB raw)")

    pick = 2 % len(images)
    client.write(bytes([pick]))
    n = int.from_bytes(client.read_exact(4), "big")
    full = decompress_image(client.read_exact(n))
    t.join(timeout=30)
    assert psnr(images[pick], full) == float("inf"), "full fetch must be exact"
    print(f"fetched image {pick} at full fidelity: {n / 1024:.1f} KB, PSNR inf")
    server.close()
    client.close()


if __name__ == "__main__":
    main()
