#!/usr/bin/env python3
"""The paper's NetSolve experiment, live and in miniature.

Builds the mini-GridRPC middleware (agent + server + client), runs
dgemm requests over a shaped 100 Mbit LAN with the plain communicator
and the AdOC communicator, for a dense and a sparse (all-zero) matrix —
the live, reduced-size version of Figures 8-9.

Usage::

    python examples/netsolve_dgemm.py [--n 144] [--profile lan100]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import ALL_PROFILES
from repro.data import dense_matrix, sparse_matrix
from repro.middleware import AdocCommunicator, Agent, Client, PlainCommunicator, Server


def run_once(profile, comm_factory, label: str, n: int) -> None:
    agent = Agent()
    server = Server("compute-1", communicator_factory=comm_factory)
    agent.register(server, lambda: profile.make_pair(seed=17))
    client = Client(agent, communicator_factory=comm_factory)

    for kind, make in (("dense", lambda: dense_matrix(n, seed=4)), ("sparse", lambda: sparse_matrix(n))):
        a = make()
        b = make()
        c, info = client.call_timed("dgemm", a, b)
        assert np.allclose(c, a @ b), "wrong dgemm result!"
        print(
            f"  {label:<8} {kind:<7} n={n}: {info.elapsed_s:6.2f}s, "
            f"request ratio {info.compression_ratio:5.2f}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=144, help="matrix dimension")
    parser.add_argument("--profile", choices=sorted(ALL_PROFILES), default="lan100")
    args = parser.parse_args()
    profile = ALL_PROFILES[args.profile]
    if profile.bandwidth_bps < 50e6:
        profile = profile.scaled(10)
    print(f"dgemm over shaped {args.profile} ({profile.bandwidth_bps / 1e6:.0f} Mbit/s):")
    run_once(profile, PlainCommunicator, "NetSolve", args.n)
    run_once(profile, AdocCommunicator, "+AdOC", args.n)


if __name__ == "__main__":
    main()
