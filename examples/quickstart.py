#!/usr/bin/env python3
"""Quickstart: send data through AdOC and watch it adapt.

Runs three transfers over an in-process shaped link modelling the
paper's Renater WAN (so compression actually pays):

1. ASCII-like data         — compresses ~5x, AdOC shines;
2. binary-like data        — compresses ~2x;
3. incompressible data     — the guard keeps AdOC out of the way.

Usage::

    python examples/quickstart.py [--profile lan100|gbit|renater|internet]
"""

from __future__ import annotations

import argparse
import threading
import time

from repro import ALL_PROFILES, AdocSocket, RENATER
from repro.data import data_by_name

MB = 1024 * 1024


def transfer(profile, cls: str, size: int) -> None:
    payload = data_by_name(cls, size, seed=42)
    a, b = profile.make_pair(seed=1)
    tx, rx = AdocSocket(a), AdocSocket(b)
    stats = {}

    def send() -> None:
        t0 = time.monotonic()
        nbytes, slen = tx.write(payload)
        stats["send"] = (nbytes, slen, time.monotonic() - t0)

    sender = threading.Thread(target=send, daemon=True)
    sender.start()
    t0 = time.monotonic()
    received = rx.read_exact(size)
    elapsed = time.monotonic() - t0
    sender.join()
    assert received == payload, "corrupted transfer!"

    nbytes, slen, _ = stats["send"]
    print(
        f"  {cls:<15} {size / MB:5.1f} MB -> {slen / MB:5.2f} MB on the wire "
        f"(ratio {nbytes / slen:5.2f}), "
        f"app bandwidth {size * 8 / elapsed / 1e6:6.1f} Mbit/s"
    )
    tx.close()
    rx.close()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile",
        choices=sorted(ALL_PROFILES),
        default="renater",
        help="network to emulate (default: renater; bandwidth scaled 10x "
        "so the demo finishes quickly)",
    )
    parser.add_argument("--size-mb", type=float, default=2.0)
    args = parser.parse_args()

    profile = ALL_PROFILES[args.profile]
    if profile.bandwidth_bps < 50e6:
        profile = profile.scaled(10)  # keep the demo snappy
    print(f"network: {args.profile} ({profile.bandwidth_bps / 1e6:.0f} Mbit/s shaped link)")
    size = int(args.size_mb * MB)
    for cls in ("ascii", "binary", "incompressible"):
        transfer(profile, cls, size)


if __name__ == "__main__":
    main()
